package circuits

import (
	"fmt"
	"math"

	"accals/internal/aig"
)

// Divider returns a width-bit restoring array divider: dividend n and
// divisor d produce quotient q and remainder r (q = all-ones when
// d == 0, matching the restoring recurrence). This stands in for the
// EPFL "div" benchmark at a configurable width.
func Divider(width int) *aig.Graph {
	g := aig.New(fmt.Sprintf("div%d", width))
	n := inputWord(g, "n", width)
	d := inputWord(g, "d", width)

	// Remainder register, width+1 bits to absorb the shift.
	rem := make(word, width+1)
	for i := range rem {
		rem[i] = aig.ConstFalse
	}
	dext := make(word, width+1)
	copy(dext, d)
	dext[width] = aig.ConstFalse

	q := make(word, width)
	for i := width - 1; i >= 0; i-- {
		// rem = (rem << 1) | n[i]
		shifted := make(word, width+1)
		shifted[0] = n[i]
		copy(shifted[1:], rem[:width])
		diff, geq := rippleSub(g, shifted, dext)
		q[i] = geq
		for j := range rem {
			rem[j] = g.Mux(geq, diff[j], shifted[j])
		}
	}
	outputWord(g, "q", q)
	outputWord(g, "r", rem[:width])
	return g
}

// Sqrt returns a digit-by-digit restoring square root circuit: the
// width-bit radicand x (width must be even) produces the width/2-bit
// root s and a remainder. This stands in for the EPFL "sqrt"
// benchmark.
func Sqrt(width int) *aig.Graph {
	if width%2 != 0 {
		panic("circuits: Sqrt width must be even")
	}
	g := aig.New(fmt.Sprintf("sqrt%d", width))
	x := inputWord(g, "x", width)
	half := width / 2

	// Working remainder, wide enough for (rem << 2) + 2 bits vs trial.
	w := half + 2
	rem := make(word, w)
	root := make(word, half)
	for i := range rem {
		rem[i] = aig.ConstFalse
	}
	for i := range root {
		root[i] = aig.ConstFalse
	}

	for step := half - 1; step >= 0; step-- {
		// rem = (rem << 2) | next two radicand bits.
		shifted := make(word, w)
		shifted[0] = x[2*step]
		shifted[1] = x[2*step+1]
		for j := 2; j < w; j++ {
			shifted[j] = rem[j-2]
		}
		// trial = (root << 2) | 01.
		trial := make(word, w)
		trial[0] = aig.ConstTrue
		trial[1] = aig.ConstFalse
		for j := 0; j < half && j+2 < w; j++ {
			trial[j+2] = root[j]
		}
		diff, geq := rippleSub(g, shifted, trial)
		for j := range rem {
			rem[j] = g.Mux(geq, diff[j], shifted[j])
		}
		// root = (root << 1) | geq.
		for j := half - 1; j > 0; j-- {
			root[j] = root[j-1]
		}
		root[0] = geq
	}
	outputWord(g, "s", root)
	outputWord(g, "r", rem[:half+1])
	return g
}

// Log2 returns a fixed-point base-2 logarithm circuit: for a width-bit
// input x it outputs the integer part floor(log2 x) and fracBits
// fraction bits computed by the repeated-squaring method on a
// width-bit mantissa. The output for x == 0 is all zeros. This stands
// in for the EPFL "log2" benchmark.
func Log2(width, fracBits int) *aig.Graph {
	g := aig.New(fmt.Sprintf("log2_%dx%d", width, fracBits))
	x := inputWord(g, "x", width)

	// Priority encoder: position of the most significant set bit.
	intBits := 1
	for 1<<intBits < width {
		intBits++
	}
	ilog := make(word, intBits)
	for i := range ilog {
		ilog[i] = aig.ConstFalse
	}
	// found = OR of higher bits processed so far, scanning from MSB.
	found := aig.ConstFalse
	for i := width - 1; i >= 0; i-- {
		isTop := g.And(x[i], found.Not())
		for b := 0; b < intBits; b++ {
			if i&(1<<b) != 0 {
				ilog[b] = g.Or(ilog[b], isTop)
			}
		}
		found = g.Or(found, x[i])
	}

	// Normalise: mantissa = x << (width-1 - ilog), so the MSB of the
	// mantissa is the leading one. A subtractor computes the shift
	// amount and a barrel shifter applies it one power of two at a
	// time.
	wm1 := make(word, intBits)
	for b := 0; b < intBits; b++ {
		if (width-1)&(1<<b) != 0 {
			wm1[b] = aig.ConstTrue
		} else {
			wm1[b] = aig.ConstFalse
		}
	}
	shamt, _ := rippleSub(g, wm1, ilog)
	mant := make(word, width)
	copy(mant, x)
	for b := 0; b < intBits; b++ {
		sh := 1 << b
		// In-place conditional left shift by sh; descending j reads
		// each source bit before it is overwritten.
		for j := width - 1; j >= 0; j-- {
			lo := aig.ConstFalse
			if j-sh >= 0 {
				lo = mant[j-sh]
			}
			mant[j] = g.Mux(shamt[b], lo, mant[j])
		}
	}

	// Fraction bits by repeated squaring of the mantissa in [1, 2).
	frac := make(word, fracBits)
	for k := fracBits - 1; k >= 0; k-- {
		sq := squareWord(g, mant)
		// sq has 2*width bits; mantissa MSB at width-1 means the
		// square's integer part occupies the top two bits.
		ge2 := sq[2*width-1]
		frac[k] = ge2
		next := make(word, width)
		for j := 0; j < width; j++ {
			hi := sq[width+j]   // value in [2, 4): take top width bits
			lo := sq[width-1+j] // value in [1, 2)
			next[j] = g.Mux(ge2, hi, lo)
		}
		mant = next
	}

	out := make(word, 0, fracBits+intBits)
	out = append(out, frac...)
	out = append(out, ilog...)
	// Zero the output when the input is zero.
	for i := range out {
		out[i] = g.And(out[i], found)
	}
	outputWord(g, "f", out)
	return g
}

// squareWord builds a column-compressed squarer and returns the
// 2*len(a)-bit product without declaring outputs.
func squareWord(g *aig.Graph, a word) word {
	width := len(a)
	cols := make([][]aig.Lit, 2*width+1)
	for i := 0; i < width; i++ {
		cols[2*i] = append(cols[2*i], a[i])
		for j := 0; j < i; j++ {
			cols[i+j+1] = append(cols[i+j+1], g.And(a[i], a[j]))
		}
	}
	return sumColumns(g, cols, 2*width)
}

// sumColumns compresses columns to two rows and returns the outW-bit
// carry-propagate sum.
func sumColumns(g *aig.Graph, cols [][]aig.Lit, outW int) word {
	for {
		max := 0
		for _, c := range cols {
			if len(c) > max {
				max = len(c)
			}
		}
		if max <= 2 {
			break
		}
		next := make([][]aig.Lit, len(cols)+1)
		for ci, c := range cols {
			i := 0
			for ; i+2 < len(c); i += 3 {
				s, cy := fullAdder(g, c[i], c[i+1], c[i+2])
				next[ci] = append(next[ci], s)
				next[ci+1] = append(next[ci+1], cy)
			}
			if i+1 < len(c) {
				s := g.Xor(c[i], c[i+1])
				cy := g.And(c[i], c[i+1])
				next[ci] = append(next[ci], s)
				next[ci+1] = append(next[ci+1], cy)
			} else if i < len(c) {
				next[ci] = append(next[ci], c[i])
			}
		}
		cols = next[:len(cols)]
	}
	x := make(word, outW)
	y := make(word, outW)
	for i := 0; i < outW; i++ {
		x[i], y[i] = aig.ConstFalse, aig.ConstFalse
		if i < len(cols) && len(cols[i]) > 0 {
			x[i] = cols[i][0]
		}
		if i < len(cols) && len(cols[i]) > 1 {
			y[i] = cols[i][1]
		}
	}
	sum, _ := rippleAdd(g, x, y, aig.ConstFalse)
	return sum
}

// SinCordic returns an unrolled CORDIC sine circuit: the width-bit
// input is an angle in [0, pi/2) scaled to the full input range, and
// the output is sin(angle) as a width-bit fraction in [0, 1). iters
// CORDIC rotations are unrolled; iters = width is typical. This
// stands in for the EPFL "sin" benchmark.
func SinCordic(width, iters int) *aig.Graph {
	g := aig.New(fmt.Sprintf("sin%d", width))
	theta := inputWord(g, "a", width)

	// Internal fixed point: width+2 bits, two guard bits, two's
	// complement. Angles scaled so that pi/2 = 2^width (input range).
	w := width + 3
	scale := math.Ldexp(1, width) / (math.Pi / 2) // angle units per radian

	constWord := func(v int64) word {
		out := make(word, w)
		for i := range out {
			if v&(1<<uint(i)) != 0 {
				out[i] = aig.ConstTrue
			} else {
				out[i] = aig.ConstFalse
			}
		}
		return out
	}

	// CORDIC gain-compensated initial vector: x = K * 2^width.
	k := 1.0
	for i := 0; i < iters; i++ {
		k *= 1 / math.Sqrt(1+math.Ldexp(1, -2*i))
	}
	xv := constWord(int64(math.Round(k * math.Ldexp(1, width))))
	yv := constWord(0)

	// z starts at theta (zero-extended into w bits).
	zv := make(word, w)
	copy(zv, theta)
	for i := width; i < w; i++ {
		zv[i] = aig.ConstFalse
	}

	for i := 0; i < iters; i++ {
		atan := int64(math.Round(math.Atan(math.Ldexp(1, -i)) * scale))
		neg := zv[w-1] // z < 0: rotate the other way
		xs := arithShiftRight(xv, i)
		ys := arithShiftRight(yv, i)
		// d = +1 when z >= 0: x -= y>>i, y += x>>i, z -= atan.
		// d = -1 when z < 0:  x += y>>i, y -= x>>i, z += atan.
		xv2 := condAddSub(g, xv, ys, neg)            // subtract when neg==0
		yv2 := condAddSub(g, yv, xs, neg.Not())      // add when neg==0
		zv = condAddSub(g, zv, constWord(atan), neg) // subtract when neg==0
		xv, yv = xv2, yv2
	}

	outputWord(g, "s", yv[:width])
	return g
}

// arithShiftRight shifts a two's-complement word right by s bits,
// replicating the sign bit.
func arithShiftRight(v word, s int) word {
	w := len(v)
	out := make(word, w)
	for i := 0; i < w; i++ {
		if i+s < w {
			out[i] = v[i+s]
		} else {
			out[i] = v[w-1]
		}
	}
	return out
}

// condAddSub returns a + b when add is true, a - b otherwise, on
// two's-complement words of equal width (conditional-invert adder).
func condAddSub(g *aig.Graph, a, b word, add aig.Lit) word {
	xb := make(word, len(b))
	for i := range b {
		xb[i] = g.Xor(b[i], add.Not())
	}
	sum, _ := rippleAdd(g, a, xb, add.Not())
	return sum
}
