package circuits

import (
	"fmt"

	"accals/internal/aig"
)

// muxWord returns sel ? t : e bitwise.
func muxWord(g *aig.Graph, sel aig.Lit, t, e word) word {
	out := make(word, len(t))
	for i := range t {
		out[i] = g.Mux(sel, t[i], e[i])
	}
	return out
}

// andWord / orWord / xorWord apply the operation bitwise.
func andWord(g *aig.Graph, a, b word) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = g.And(a[i], b[i])
	}
	return out
}

func orWord(g *aig.Graph, a, b word) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = g.Or(a[i], b[i])
	}
	return out
}

func xorWord(g *aig.Graph, a, b word) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = g.Xor(a[i], b[i])
	}
	return out
}

// notWord complements every bit.
func notWord(a word) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = a[i].Not()
	}
	return out
}

// shlWord shifts left by one, inserting in.
func shlWord(a word, in aig.Lit) word {
	out := make(word, len(a))
	out[0] = in
	copy(out[1:], a[:len(a)-1])
	return out
}

// reduceOr returns the OR of all bits.
func reduceOr(g *aig.Graph, a word) aig.Lit {
	out := aig.ConstFalse
	for _, l := range a {
		out = g.Or(out, l)
	}
	return out
}

// reduceXor returns the XOR (parity) of all bits.
func reduceXor(g *aig.Graph, a word) aig.Lit {
	out := aig.ConstFalse
	for _, l := range a {
		out = g.Xor(out, l)
	}
	return out
}

// aluCore builds an 8-function ALU over width-bit operands selected by
// op[2:0]: add, sub, inc, shl, and, or, xor, not. It returns the
// result and the carry-out of the arithmetic group.
func aluCore(g *aig.Graph, a, b word, op word, cin aig.Lit) (word, aig.Lit) {
	width := len(a)
	one := make(word, width)
	one[0] = aig.ConstTrue
	for i := 1; i < width; i++ {
		one[i] = aig.ConstFalse
	}

	addR, addC := rippleAdd(g, a, b, cin)
	subR, subC := rippleSub(g, a, b)
	incR, incC := rippleAdd(g, a, one, aig.ConstFalse)
	shlR := shlWord(a, cin)

	arith0 := muxWord(g, op[0], subR, addR) // op00x
	arith1 := muxWord(g, op[0], shlR, incR) // op01x
	arith := muxWord(g, op[1], arith1, arith0)

	logic0 := muxWord(g, op[0], orWord(g, a, b), andWord(g, a, b))
	logic1 := muxWord(g, op[0], notWord(a), xorWord(g, a, b))
	logic := muxWord(g, op[1], logic1, logic0)

	f := muxWord(g, op[2], logic, arith)
	c01 := g.Mux(op[0], subC, addC)
	c23 := g.Mux(op[0], a[width-1], incC) // shl carry = MSB out
	cout := g.And(op[2].Not(), g.Mux(op[1], c23, c01))
	return f, cout
}

// ALU4 returns a 4-bit ALU with 14 inputs and 8 outputs, the stand-in
// for the LGSynt91 "alu4" benchmark (14 PI / 8 PO random-logic ALU).
func ALU4() *aig.Graph {
	g := aig.New("alu4")
	a := inputWord(g, "a", 4)
	b := inputWord(g, "b", 4)
	op := inputWord(g, "op", 3)
	cin := g.AddPI("cin")
	mode := g.AddPI("mode")
	swap := g.AddPI("swap")

	// Optional operand swap and mode-conditioned B inversion.
	a2 := muxWord(g, swap, b, a)
	b2 := muxWord(g, swap, a, b)
	for i := range b2 {
		b2[i] = g.Xor(b2[i], mode)
	}
	f, cout := aluCore(g, a2, b2, op, cin)

	outputWord(g, "f", f)
	g.AddPO(cout, "cout")
	g.AddPO(reduceOr(g, f).Not(), "zero")
	g.AddPO(f[3], "neg")
	g.AddPO(reduceXor(g, f), "parity")
	return g
}

// C880 returns the stand-in for ISCAS-85 c880 (an 8-bit ALU): an
// 8-bit ALU core plus a magnitude comparator and an output selection
// network.
func C880() *aig.Graph {
	g := aig.New("c880")
	a := inputWord(g, "a", 8)
	b := inputWord(g, "b", 8)
	c := inputWord(g, "c", 8)
	op := inputWord(g, "op", 3)
	cin := g.AddPI("cin")
	sel := inputWord(g, "sel", 2)

	f, cout := aluCore(g, a, b, op, cin)

	// Magnitude comparison of f against c.
	diff, geq := rippleSub(g, f, c)
	eq := reduceOr(g, xorWord(g, f, c)).Not()
	lt := geq.Not()
	gt := g.And(geq, eq.Not())

	// Output mux network: sel chooses among f, c, diff, f^c.
	m0 := muxWord(g, sel[0], c, f)
	m1 := muxWord(g, sel[0], xorWord(g, f, c), diff)
	m := muxWord(g, sel[1], m1, m0)

	outputWord(g, "f", f)
	g.AddPO(cout, "cout")
	g.AddPO(reduceOr(g, f).Not(), "zero")
	g.AddPO(reduceXor(g, f), "parity")
	g.AddPO(eq, "eq")
	g.AddPO(lt, "lt")
	g.AddPO(gt, "gt")
	outputWord(g, "m", m)
	return g
}

// C1908 returns the stand-in for ISCAS-85 c1908 (an error-correcting
// circuit): a Hamming SEC-DED decoder over 16 data bits with 6 check
// bits, producing corrected data, the syndrome, and error flags.
func C1908() *aig.Graph {
	g := aig.New("c1908")
	data := inputWord(g, "d", 16)
	chk := inputWord(g, "p", 6)

	// Codeword positions 1..21: positions that are powers of two hold
	// check bits; the rest hold data bits in order.
	pos := make([]aig.Lit, 22) // index 1..21
	dataPos := make([]int, 0, 16)
	di := 0
	ci := 0
	for p := 1; p <= 21; p++ {
		if p&(p-1) == 0 {
			pos[p] = chk[ci]
			ci++
		} else {
			pos[p] = data[di]
			dataPos = append(dataPos, p)
			di++
		}
	}

	// Syndrome bits: XOR over positions with the corresponding bit of
	// their index set (check bit included, so syndrome is zero for a
	// valid codeword).
	synd := make(word, 5)
	for s := 0; s < 5; s++ {
		x := aig.ConstFalse
		for p := 1; p <= 21; p++ {
			if p&(1<<s) != 0 {
				x = g.Xor(x, pos[p])
			}
		}
		synd[s] = x
	}
	// Overall parity (uses the 6th check bit).
	overall := chk[5]
	for p := 1; p <= 21; p++ {
		overall = g.Xor(overall, pos[p])
	}

	// Correct single-bit errors in the data positions: data bit i is
	// flipped when the syndrome equals its position.
	corrected := make(word, 16)
	for i, p := range dataPos {
		match := aig.ConstTrue
		for s := 0; s < 5; s++ {
			bit := synd[s]
			if p&(1<<s) == 0 {
				bit = bit.Not()
			}
			match = g.And(match, bit)
		}
		corrected[i] = g.Xor(data[i], g.And(match, overall))
	}

	singleErr := g.And(reduceOr(g, synd), overall)
	doubleErr := g.And(reduceOr(g, synd), overall.Not())

	outputWord(g, "c", corrected)
	outputWord(g, "s", synd)
	g.AddPO(overall, "perr")
	g.AddPO(singleErr, "serr")
	g.AddPO(doubleErr, "derr")
	return g
}

// C3540 returns the stand-in for ISCAS-85 c3540 (an 8-bit ALU with
// BCD support): an 8-bit ALU core with a BCD adjust stage, a barrel
// rotator, a result mask and status outputs.
func C3540() *aig.Graph {
	g := aig.New("c3540")
	a := inputWord(g, "a", 8)
	b := inputWord(g, "b", 8)
	mask := inputWord(g, "k", 8)
	op := inputWord(g, "op", 3)
	rot := inputWord(g, "rot", 3)
	cin := g.AddPI("cin")
	bcd := g.AddPI("bcd")

	f, cout := aluCore(g, a, b, op, cin)

	// BCD adjust: add 6 to a nibble when it exceeds 9.
	low := f[:4]
	high := f[4:]
	adjLow := nibbleAdjust(g, low)
	adjHigh := nibbleAdjust(g, high)
	fAdj := append(append(word{}, adjLow...), adjHigh...)
	f2 := muxWord(g, bcd, fAdj, f)

	// Barrel rotate left by rot.
	cur := f2
	for s := 0; s < 3; s++ {
		sh := 1 << s
		rotated := make(word, 8)
		for i := 0; i < 8; i++ {
			rotated[(i+sh)%8] = cur[i]
		}
		cur = muxWord(g, rot[s], rotated, cur)
	}
	res := andWord(g, cur, mask)

	// Priority encoder of the result.
	pri := make(word, 3)
	for i := range pri {
		pri[i] = aig.ConstFalse
	}
	found := aig.ConstFalse
	for i := 7; i >= 0; i-- {
		isTop := g.And(res[i], found.Not())
		for bit := 0; bit < 3; bit++ {
			if i&(1<<bit) != 0 {
				pri[bit] = g.Or(pri[bit], isTop)
			}
		}
		found = g.Or(found, res[i])
	}

	outputWord(g, "f", res)
	g.AddPO(cout, "cout")
	g.AddPO(found.Not(), "zero")
	g.AddPO(reduceXor(g, res), "parity")
	g.AddPO(res[7], "neg")
	outputWord(g, "pri", pri)
	return g
}

// nibbleAdjust adds 6 to a 4-bit value when it exceeds 9 (BCD digit
// correction), discarding the nibble carry.
func nibbleAdjust(g *aig.Graph, n word) word {
	if len(n) != 4 {
		panic(fmt.Sprintf("circuits: nibbleAdjust needs 4 bits, got %d", len(n)))
	}
	gt9 := g.And(n[3], g.Or(n[2], n[1]))
	six := word{aig.ConstFalse, gt9, gt9, aig.ConstFalse}
	adj, _ := rippleAdd(g, n, six, aig.ConstFalse)
	return adj
}
