package dispatch

import (
	"testing"
	"time"
)

// TestClockMapMidpoint pins the offset estimate: a server reading
// taken between t0 and t1 is anchored at the round trip's midpoint,
// so any server timestamp maps to local time with error bounded by
// rtt/2 regardless of the true one-way asymmetry.
func TestClockMapMidpoint(t *testing.T) {
	t0 := time.Now()
	rtt := 10 * time.Millisecond
	t1 := t0.Add(rtt)
	base := int64(5_000_000_000) // 5s on the server's monotonic clock

	cm := newClockMap(t0, t1, base)
	if cm.rtt != rtt {
		t.Fatalf("rtt %v, want %v", cm.rtt, rtt)
	}

	// The base maps to the midpoint exactly.
	if got, want := cm.toLocal(base), t0.Add(rtt/2); !got.Equal(want) {
		t.Fatalf("toLocal(base) = %v, want %v", got, want)
	}
	// Offsets in both directions are pure arithmetic: a span that
	// started d before/after the handshake maps d before/after the
	// anchor, for skews in either direction.
	for _, d := range []time.Duration{-3 * time.Second, -time.Millisecond, time.Millisecond, 7 * time.Second} {
		got := cm.toLocal(base + int64(d))
		want := t0.Add(rtt/2 + d)
		if !got.Equal(want) {
			t.Fatalf("toLocal(base%+v) = %v, want %v", d, got, want)
		}
	}

	// Whatever the true one-way delay split, the server actually read
	// its clock somewhere in [t0, t1]; the midpoint estimate is
	// therefore never more than rtt/2 wrong.
	for _, trueAt := range []time.Time{t0, t0.Add(rtt / 4), t1} {
		if err := cm.toLocal(base).Sub(trueAt); err > rtt/2 || err < -rtt/2 {
			t.Fatalf("mapping error %v exceeds rtt/2 bound for true time %v", err, trueAt)
		}
	}
}

// TestClockMapMonotonicOnly checks the mapping never consults the wall
// clock after construction: it is anchored to t0 (which carries Go's
// monotonic reading) and advanced by pure durations, so a wall-clock
// step between handshake and use cannot skew mapped spans.
func TestClockMapMonotonicOnly(t *testing.T) {
	t0 := time.Now()
	cm := newClockMap(t0, t0.Add(time.Millisecond), 1000)
	a := cm.toLocal(1000)
	b := cm.toLocal(2000)
	if d := b.Sub(a); d != 1000 {
		t.Fatalf("1µs of server time mapped to %v of local time", d)
	}
	// Strictly increasing in server nanos.
	if !b.After(a) {
		t.Fatal("mapping is not monotonic")
	}
	// t0's monotonic reading survives the Add in toLocal: Sub between
	// mapped times is exact even across a wall-clock change, which Go
	// guarantees only for monotonic-carrying Times. Round(0) strips
	// the monotonic clock; the mapped times must still order.
	if !b.Round(0).After(a.Round(0)) {
		t.Fatal("wall components do not order")
	}
}

// TestClockMapDegenerate pins the clamps: a non-positive measured rtt
// (clock steps between the two local readings cannot happen with
// monotonic time, but defend anyway) clamps to zero.
func TestClockMapDegenerate(t *testing.T) {
	t0 := time.Now()
	cm := newClockMap(t0, t0.Add(-time.Millisecond), 0)
	if cm.rtt != 0 {
		t.Fatalf("negative rtt not clamped: %v", cm.rtt)
	}
	if got := cm.toLocal(0); !got.Equal(t0) {
		t.Fatalf("zero-rtt anchor = %v, want t0", got)
	}
}
