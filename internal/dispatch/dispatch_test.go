package dispatch

import (
	"context"

	"net"
	"testing"
	"time"

	"accals/internal/aig"
	"accals/internal/circuits"
	"accals/internal/errmetric"
	"accals/internal/estimator"
	"accals/internal/faultinject"
	"accals/internal/lac"
	"accals/internal/simulate"
)

// startServer runs a Server on a loopback listener for the test's
// lifetime and returns its address.
func startServer(t *testing.T, workers int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		(&Server{Workers: workers}).Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

func setup(t *testing.T, g *aig.Graph, kind errmetric.Kind) (*simulate.Patterns, *simulate.Result, *errmetric.Comparator, []*lac.LAC) {
	t.Helper()
	p := simulate.NewPatterns(g.NumPIs(), 1<<11, 5)
	res := simulate.MustRun(g, p)
	cmp := errmetric.NewComparator(kind, g, p)
	cands := lac.Generate(g, res, lac.Config{EnableResub: true})
	if len(cands) < 8 {
		t.Fatalf("only %d candidates", len(cands))
	}
	return p, res, cmp, cands
}

func snapshot(lacs []*lac.LAC) []float64 {
	out := make([]float64, len(lacs))
	for i, l := range lacs {
		out[i] = l.DeltaE
	}
	return out
}

func clear(lacs []*lac.LAC) {
	for _, l := range lacs {
		l.DeltaE = 0
	}
}

// TestRemoteMatchesLocal is the tentpole property: remote evaluation
// is bit-identical to local across every metric family, fast and
// exact mode, and several evaluator counts (two evaluators may share
// one server process — each connection is its own session).
func TestRemoteMatchesLocal(t *testing.T) {
	addr := startServer(t, 1)
	g := circuits.ArrayMult(4)
	for _, kind := range []errmetric.Kind{errmetric.ER, errmetric.MHD, errmetric.NMED, errmetric.MRED} {
		p, res, cmp, cands := setup(t, g, kind)
		for _, exact := range []bool{false, true} {
			if exact && kind == errmetric.MRED {
				continue // exact mode covered per-kind below; trim runtime
			}
			est := estimator.New(1)
			want := localEval(est, g, res, cmp, cands, exact, nil)
			wantD := snapshot(cands)
			for _, evals := range []int{1, 2, 3} {
				addrs := make([]string, evals)
				for i := range addrs {
					addrs[i] = addr
				}
				pool := NewPool(addrs, kind, g, p, nil)
				pool.MinBatch = 1
				clear(cands)
				got := pool.EstimateAll(est, g, res, cmp, cands, exact, nil)
				if got != want {
					t.Fatalf("%v exact=%v evals=%d: current error %v, want %v", kind, exact, evals, got, want)
				}
				for i := range cands {
					if cands[i].DeltaE != wantD[i] {
						t.Fatalf("%v exact=%v evals=%d: cand %d DeltaE %v, want %v", kind, exact, evals, i, cands[i].DeltaE, wantD[i])
					}
				}
				pool.Close()
			}
		}
	}
}

// TestEpochSequence checks bit-identity across circuit changes: the
// pool must push a fresh epoch when the graph changes and keep serving
// the same graph without a re-push.
func TestEpochSequence(t *testing.T) {
	addr := startServer(t, 1)
	g := circuits.ArrayMult(4)
	kind := errmetric.NMED
	p, res, cmp, cands := setup(t, g, kind)
	pool := NewPool([]string{addr, addr}, kind, g, p, nil)
	pool.MinBatch = 1
	defer pool.Close()
	est := estimator.New(1)

	// Round 1 on g (twice: second call reuses the pushed epoch).
	for pass := 0; pass < 2; pass++ {
		clear(cands)
		pool.EstimateAll(est, g, res, cmp, cands, false, nil)
		got := snapshot(cands)
		clear(cands)
		localEval(est, g, res, cmp, cands, false, nil)
		for i, w := range snapshot(cands) {
			if got[i] != w {
				t.Fatalf("pass %d cand %d: %v != %v", pass, i, got[i], w)
			}
		}
	}

	// Round 2 on a rewritten circuit: new epoch, new candidates.
	g2 := lac.Apply(g, cands[:1])
	res2 := simulate.MustRun(g2, p)
	cmp2 := errmetric.NewComparator(kind, g, p)
	cands2 := lac.Generate(g2, res2, lac.Config{EnableResub: true})
	clear(cands2)
	pool.EstimateAll(est, g2, res2, cmp2, cands2, false, nil)
	got := snapshot(cands2)
	clear(cands2)
	localEval(est, g2, res2, cmp2, cands2, false, nil)
	for i, w := range snapshot(cands2) {
		if got[i] != w {
			t.Fatalf("epoch 2 cand %d: %v != %v", i, got[i], w)
		}
	}
}

// TestFailover checks that every injected transport fault — dial
// failure, send failure, torn frame, delayed response past the
// deadline, and no server at all — fails over to local evaluation
// with bit-identical results.
func TestFailover(t *testing.T) {
	addr := startServer(t, 1)
	g := circuits.ArrayMult(4)
	kind := errmetric.ER
	p, res, cmp, cands := setup(t, g, kind)
	est := estimator.New(1)
	want := localEval(est, g, res, cmp, cands, false, nil)
	wantD := snapshot(cands)

	check := func(t *testing.T, pool *Pool) {
		t.Helper()
		clear(cands)
		got := pool.EstimateAll(est, g, res, cmp, cands, false, nil)
		if got != want {
			t.Fatalf("current error %v, want %v", got, want)
		}
		for i := range cands {
			if cands[i].DeltaE != wantD[i] {
				t.Fatalf("cand %d: DeltaE %v, want %v", i, cands[i].DeltaE, wantD[i])
			}
		}
	}

	specs := []string{
		FaultConnect + ":error:1.0",
		FaultSend + ":error:1.0",
		FaultFrame + ":truncate:1.0:0.4",
		// Mid-batch flakiness: some slices fail, some succeed.
		FaultSend + ":error:0.5",
		FaultFrame + ":truncate:0.3:0.2",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			inj, err := faultinject.Parse(7, spec)
			if err != nil {
				t.Fatal(err)
			}
			pool := NewPool([]string{addr, addr, addr}, kind, g, p, inj)
			pool.MinBatch = 1
			defer pool.Close()
			// Several rounds so per-point RNG streams explore both
			// firing and passing, exercising close/re-dial/re-init.
			for round := 0; round < 4; round++ {
				check(t, pool)
			}
		})
	}

	t.Run("no-server", func(t *testing.T) {
		// A dead address: dial fails, everything runs locally.
		pool := NewPool([]string{"127.0.0.1:1"}, kind, g, p, nil)
		pool.MinBatch = 1
		pool.Timeout = 2 * time.Second
		defer pool.Close()
		check(t, pool)
	})

	t.Run("delayed-response", func(t *testing.T) {
		inj, err := faultinject.Parse(7, FaultRecvDelay+":delay:1.0:300ms")
		if err != nil {
			t.Fatal(err)
		}
		pool := NewPool([]string{addr}, kind, g, p, inj)
		pool.MinBatch = 1
		pool.Timeout = 50 * time.Millisecond
		defer pool.Close()
		check(t, pool)
	})
}

// TestSmallBatchStaysLocal checks the dispatch floor: batches below
// MinBatch per share never touch the wire.
func TestSmallBatchStaysLocal(t *testing.T) {
	g := circuits.ArrayMult(4)
	kind := errmetric.ER
	p, res, cmp, cands := setup(t, g, kind)
	// Point at a dead address: if the pool dispatched, evaluation
	// would still succeed via failover, but dialing a dead port with
	// the default timeout would stall the test — so assert quickly.
	pool := NewPool([]string{"127.0.0.1:1"}, kind, g, p, nil)
	pool.MinBatch = len(cands) // shares would each be < MinBatch
	pool.Timeout = time.Millisecond
	defer pool.Close()
	est := estimator.New(1)
	start := time.Now()
	pool.EstimateAll(est, g, res, cmp, cands, false, nil)
	if time.Since(start) > 5*time.Second {
		t.Fatal("small batch appears to have hit the network")
	}
}

// TestServerRejectsGarbage checks the server survives malformed
// traffic: bad frame types, eval before init, oversized prefixes.
func TestServerRejectsGarbage(t *testing.T) {
	addr := startServer(t, 1)
	dial := func() net.Conn {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		return nc
	}

	// Eval before init: error frame, then the server hangs up.
	nc := dial()
	writeFrame(nc, frameEval, encodeEval(1, modeFast, nil))
	typ, _, _, err := readFrame(nc)
	if err != nil || typ != frameError {
		t.Fatalf("eval-before-init: typ %d err %v, want error frame", typ, err)
	}
	nc.Close()

	// Unknown frame type.
	nc = dial()
	writeFrame(nc, 0x7f, []byte("junk"))
	typ, _, _, err = readFrame(nc)
	if err != nil || typ != frameError {
		t.Fatalf("unknown frame: typ %d err %v, want error frame", typ, err)
	}
	nc.Close()

	// Oversized length prefix: connection dropped without allocation.
	nc = dial()
	nc.Write([]byte{0xff, 0xff, 0xff, 0xff, frameInit})
	if _, _, _, err := readFrame(nc); err == nil {
		t.Fatal("oversized frame: server should hang up")
	}
	nc.Close()

	// The server must still serve real sessions afterwards.
	g := circuits.RCA(4)
	p, res, cmp, cands := setup(t, g, errmetric.ER)
	pool := NewPool([]string{addr}, errmetric.ER, g, p, nil)
	pool.MinBatch = 1
	defer pool.Close()
	est := estimator.New(1)
	want := localEval(est, g, res, cmp, cands, false, nil)
	clear(cands)
	if got := pool.EstimateAll(est, g, res, cmp, cands, false, nil); got != want {
		t.Fatalf("after garbage: %v != %v", got, want)
	}
}

// TestLACWireRoundTrip pins the candidate encoding across every
// function kind and complement combination.
func TestLACWireRoundTrip(t *testing.T) {
	var lacs []*lac.LAC
	mk := func(kind lac.FnKind, sns ...int) {
		for mask := 0; mask < 16; mask++ {
			lacs = append(lacs, &lac.LAC{
				Target: 100 + len(lacs),
				SNs:    append([]int(nil), sns...),
				Fn: lac.Fn{
					Kind: kind,
					C0:   mask&1 != 0,
					C1:   mask&2 != 0,
					C2:   mask&4 != 0,
					OutC: mask&8 != 0,
				},
			})
		}
	}
	mk(lac.FnConst0)
	mk(lac.FnConst1)
	mk(lac.FnWire, 3)
	mk(lac.FnAnd, 4, 9)
	mk(lac.FnXor, 1, 2)
	mk(lac.FnMux, 5, 6, 7)
	mk(lac.FnMaj, 8, 9, 10)

	epoch, mode, got, _, err := decodeEval(encodeEval(42, modeExact, lacs), protoVersion)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 || mode != modeExact {
		t.Fatalf("epoch %d mode %d", epoch, mode)
	}
	if len(got) != len(lacs) {
		t.Fatalf("%d candidates, want %d", len(got), len(lacs))
	}
	for i, l := range lacs {
		g := got[i]
		if g.Target != l.Target || g.Fn != l.Fn || len(g.SNs) != len(l.SNs) {
			t.Fatalf("cand %d: %v vs %v", i, g, l)
		}
		for j := range l.SNs {
			if g.SNs[j] != l.SNs[j] {
				t.Fatalf("cand %d SN %d: %d vs %d", i, j, g.SNs[j], l.SNs[j])
			}
		}
	}
}

// TestEvalPayloadFuzz throws mutated eval payloads at the decoder —
// never a panic, always an error or a well-formed batch.
func TestEvalPayloadFuzz(t *testing.T) {
	base := encodeEval(3, modeFast, []*lac.LAC{
		{Target: 10, SNs: []int{2, 5}, Fn: lac.Fn{Kind: lac.FnAnd}},
		{Target: 11, Fn: lac.Fn{Kind: lac.FnConst1}},
	})
	for i := range base {
		for _, x := range []byte{0x01, 0x55, 0xff} {
			mut := append([]byte(nil), base...)
			mut[i] ^= x
			decodeEval(mut, protoVersion) // must not panic
		}
	}
	for n := 0; n < len(base); n++ {
		decodeEval(base[:n], protoVersion)
	}
}
