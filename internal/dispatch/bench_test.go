package dispatch

import (
	"context"
	"io"
	"net"
	"testing"

	"accals/internal/circuits"
	"accals/internal/errmetric"
	"accals/internal/estimator"
	"accals/internal/lac"
	"accals/internal/obs"
	"accals/internal/simulate"
)

// benchmarkDispatch drives EstimateAll over a real loopback evaluator
// with tracing off or on. The pair pins the zero-cost contract from
// the allocation side: the trace-off numbers must match the pre-trace
// baseline (no new allocations on the hot path — compare the two
// ReportAllocs outputs to see exactly what tracing costs when armed).
func benchmarkDispatch(b *testing.B, traced bool) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		(&Server{Workers: 1}).Serve(ctx, ln)
	}()
	b.Cleanup(func() {
		cancel()
		<-done
	})

	g := circuits.ArrayMult(4)
	kind := errmetric.ER
	p := simulate.NewPatterns(g.NumPIs(), 1<<11, 5)
	res := simulate.MustRun(g, p)
	cmp := errmetric.NewComparator(kind, g, p)
	cands := lac.Generate(g, res, lac.Config{EnableResub: true})
	est := estimator.New(1)

	rec := obs.NewRecorder()
	pool := NewPool([]string{ln.Addr().String()}, kind, g, p, nil)
	pool.MinBatch = 1
	defer pool.Close()
	if traced {
		rec.AddTracer(obs.NewTracer(io.Discard, obs.TraceJSONL))
		pool.TraceID = rec.TraceID()
	}

	pool.EstimateAll(est, g, res, cmp, cands, false, rec) // dial + init + epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.EstimateAll(est, g, res, cmp, cands, false, rec)
	}
}

func BenchmarkDispatchTraceOff(b *testing.B) { benchmarkDispatch(b, false) }
func BenchmarkDispatchTraceOn(b *testing.B)  { benchmarkDispatch(b, true) }
