// Package dispatch farms candidate-batch error estimation to external
// evaluator processes (`accals -serve-eval`, same binary) over a
// length-prefixed binary protocol, breaking the one-process ceiling on
// round time.
//
// Correctness rests on one property of the estimator: a candidate's
// ΔE is a pure function of (graph, pattern set, metric, candidate) —
// never of which other candidates share the batch — because every
// per-output propagation mask is deterministic and every merge is
// order-free (DESIGN §2d). Splitting a batch into slices and
// evaluating the slices on different processes therefore yields
// bit-identical DeltaE values to local evaluation, and the client
// merges by writing each slice's results into disjoint slots. Any
// transport error fails the slice over to local evaluation, so faults
// cost time, never correctness.
//
// Wire format: every frame is a 4-byte big-endian payload length, a
// 1-byte frame type, then the payload. The conversation per
// connection:
//
//	client → init    version, metric kind, pattern words, reference circuit
//	server → ok      (or error)
//	client → epoch   epoch id + current circuit        } once per circuit
//	server → ok      (or error)                        } change, per conn
//	client → eval    epoch id, mode (fast|exact), candidate slice
//	server → result  one IEEE-754 bit pattern per candidate (or error)
//
// The server keeps exactly one decoded circuit per connection — the
// latest epoch — simulates it once on arrival, and rejects eval
// frames whose epoch id does not match (the client then re-pushes).
// Float64s cross the wire as math.Float64bits, so no precision is
// lost and bit-identity survives the roundtrip.
package dispatch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"accals/internal/errmetric"
	"accals/internal/lac"
	"accals/internal/simulate"
)

// protoVersion is the baseline wire-protocol version carried by the
// init frame. protoVersionTrace adds distributed-tracing context: the
// init frame carries the run's trace ID and is answered with the
// evaluator's monotonic clock reading + OS pid (the clock-offset
// handshake), eval frames carry the round and a parent span ID, and
// result frames append evaluator-side telemetry spans. A client only
// offers version 2 when tracing is on; an old evaluator rejects the
// version and the client falls back to version 1 for that connection
// (results stay bit-identical — missing context just means no remote
// spans).
const (
	protoVersion      = 1
	protoVersionTrace = 2
)

// Frame types.
const (
	frameInit byte = iota + 1
	frameOK
	frameEpoch
	frameEval
	frameResult
	frameError
)

// Eval modes.
const (
	modeFast  byte = 0
	modeExact byte = 1
)

// maxFrame bounds a frame payload (64 MiB): large enough for any
// realistic pattern set or candidate batch, small enough that a
// corrupt length prefix cannot provoke an absurd allocation.
const maxFrame = 64 << 20

// ErrProtocol is wrapped by every malformed-frame error.
var ErrProtocol = errors.New("dispatch: protocol error")

// ErrRemote is wrapped by errors the peer reported in an error frame.
var ErrRemote = errors.New("dispatch: remote error")

// writeFrame writes one frame: length prefix, type byte, payload.
func writeFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return 0, err
		}
	}
	return len(hdr) + len(payload), nil
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (byte, []byte, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, 0, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, err
	}
	return hdr[4], payload, len(hdr) + int(n), nil
}

// encodeInit builds the init payload: protocol version, metric kind,
// pattern set (PI count, pattern count, packed words per PI), and the
// encoded reference circuit. A non-empty traceID selects protocol
// version 2 and appends the trace ID; an empty one produces the exact
// version-1 byte layout.
func encodeInit(kind errmetric.Kind, ref []byte, p *simulate.Patterns, traceID string) []byte {
	words := p.Words()
	buf := make([]byte, 0, 16+p.NumPIs()*words*8+len(ref)+len(traceID))
	ver := byte(protoVersion)
	if traceID != "" {
		ver = protoVersionTrace
	}
	buf = append(buf, ver, byte(kind))
	buf = binary.AppendUvarint(buf, uint64(p.NumPIs()))
	buf = binary.AppendUvarint(buf, uint64(p.NumPatterns()))
	for i := 0; i < p.NumPIs(); i++ {
		row := p.PIValue(i)
		for w := 0; w < words; w++ {
			buf = binary.LittleEndian.AppendUint64(buf, row[w])
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(ref)))
	buf = append(buf, ref...)
	if traceID != "" {
		buf = binary.AppendUvarint(buf, uint64(len(traceID)))
		buf = append(buf, traceID...)
	}
	return buf
}

// initReq is a decoded init frame.
type initReq struct {
	kind    errmetric.Kind
	ref     []byte
	pats    *simulate.Patterns
	ver     byte
	traceID string
}

func decodeInit(payload []byte) (initReq, error) {
	d := wireDecoder{buf: payload}
	ver := d.byte()
	kind := errmetric.Kind(d.byte())
	if d.err == nil && ver != protoVersion && ver != protoVersionTrace {
		return initReq{}, fmt.Errorf("%w: protocol version %d, want %d", ErrProtocol, ver, protoVersionTrace)
	}
	if d.err == nil && kind == errmetric.MaxED {
		// Remote evaluation only samples; it cannot carry the SAT
		// certification a MaxED run's acceptance depends on. Refusing
		// the metric here keeps a misconfigured coordinator from
		// silently downgrading certified synthesis to sampling.
		return initReq{}, fmt.Errorf("%w: metric %v is not dispatchable (SAT certification is local-only)", ErrProtocol, kind)
	}
	numPIs := int(d.uvarint())
	numPatterns := int(d.uvarint())
	if d.err != nil {
		return initReq{}, d.err
	}
	if numPIs < 0 || numPIs > 1<<20 || numPatterns < 1 || numPatterns > 1<<30 {
		return initReq{}, fmt.Errorf("%w: pattern set %d x %d out of range", ErrProtocol, numPIs, numPatterns)
	}
	words := (numPatterns + 63) / 64
	rows := make([][]uint64, numPIs)
	for i := range rows {
		rows[i] = d.words(words)
	}
	ref := d.bytes()
	var traceID string
	if ver == protoVersionTrace {
		traceID = string(d.bytes())
	}
	if d.err != nil {
		return initReq{}, d.err
	}
	if len(d.buf) != 0 {
		return initReq{}, fmt.Errorf("%w: %d trailing bytes in init", ErrProtocol, len(d.buf))
	}
	p, err := simulate.FromWords(numPIs, numPatterns, rows)
	if err != nil {
		return initReq{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return initReq{kind: kind, ref: ref, pats: p, ver: ver, traceID: traceID}, nil
}

// encodeInitOK builds the version-2 init acknowledgement: the
// evaluator's monotonic clock reading (nanoseconds since its Serve
// started) and its OS pid. Version-1 init acks carry no payload.
func encodeInitOK(serverNanos int64, pid int) []byte {
	buf := make([]byte, 0, 16)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(serverNanos))
	return binary.AppendUvarint(buf, uint64(pid))
}

func decodeInitOK(payload []byte) (int64, int, error) {
	d := wireDecoder{buf: payload}
	nanos := int64(d.u64())
	pid := int(d.uvarint())
	if d.err != nil {
		return 0, 0, d.err
	}
	if len(d.buf) != 0 {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes in init ack", ErrProtocol, len(d.buf))
	}
	return nanos, pid, nil
}

// encodeEpoch builds the epoch payload: epoch id + encoded circuit.
func encodeEpoch(epoch uint64, g []byte) []byte {
	buf := make([]byte, 0, 10+len(g))
	buf = binary.AppendUvarint(buf, epoch)
	return append(buf, g...)
}

func decodeEpoch(payload []byte) (uint64, []byte, error) {
	d := wireDecoder{buf: payload}
	epoch := d.uvarint()
	if d.err != nil {
		return 0, nil, d.err
	}
	return epoch, d.buf, nil
}

// snCount maps a replacement-function kind to its substitute-node
// count, which the candidate encoding leaves implicit.
func snCount(k lac.FnKind) int {
	switch k {
	case lac.FnConst0, lac.FnConst1:
		return 0
	case lac.FnWire:
		return 1
	case lac.FnAnd, lac.FnXor:
		return 2
	case lac.FnMux, lac.FnMaj:
		return 3
	}
	return -1
}

// encodeEval builds the eval payload: epoch id, mode, candidate count,
// then per candidate the target id, one packed function byte (kind in
// the low 3 bits, then C0/C1/C2/OutC flags) and the substitute nodes.
func encodeEval(epoch uint64, mode byte, lacs []*lac.LAC) []byte {
	buf := make([]byte, 0, 16+8*len(lacs))
	buf = binary.AppendUvarint(buf, epoch)
	buf = append(buf, mode)
	buf = binary.AppendUvarint(buf, uint64(len(lacs)))
	for _, l := range lacs {
		buf = binary.AppendUvarint(buf, uint64(l.Target))
		fb := byte(l.Fn.Kind) & 7
		if l.Fn.C0 {
			fb |= 1 << 3
		}
		if l.Fn.C1 {
			fb |= 1 << 4
		}
		if l.Fn.C2 {
			fb |= 1 << 5
		}
		if l.Fn.OutC {
			fb |= 1 << 6
		}
		buf = append(buf, fb)
		for _, sn := range l.SNs[:snCount(l.Fn.Kind)] {
			buf = binary.AppendUvarint(buf, uint64(sn))
		}
	}
	return buf
}

// evalTrace is the trace context a version-2 eval frame carries: the
// synthesis round the batch belongs to (-1 when unknown) and the
// client-side parent span ID.
type evalTrace struct {
	round  int
	spanID uint64
}

// appendEvalTrace appends the version-2 trace-context suffix to an
// encoded eval payload. Round -1 (unknown) encodes as 0.
func appendEvalTrace(buf []byte, round int, spanID uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(round+1))
	return binary.AppendUvarint(buf, spanID)
}

// decodeEval decodes an eval payload at the session's negotiated
// protocol version. Version 1 frames yield a zero evalTrace with
// round -1.
func decodeEval(payload []byte, ver byte) (uint64, byte, []*lac.LAC, evalTrace, error) {
	tr := evalTrace{round: -1}
	d := wireDecoder{buf: payload}
	epoch := d.uvarint()
	mode := d.byte()
	n := int(d.uvarint())
	if d.err != nil {
		return 0, 0, nil, tr, d.err
	}
	if mode != modeFast && mode != modeExact {
		return 0, 0, nil, tr, fmt.Errorf("%w: eval mode %d", ErrProtocol, mode)
	}
	if n < 0 || n > 1<<24 {
		return 0, 0, nil, tr, fmt.Errorf("%w: candidate count %d out of range", ErrProtocol, n)
	}
	lacs := make([]*lac.LAC, 0, n)
	for i := 0; i < n; i++ {
		target := int(d.uvarint())
		fb := d.byte()
		fn := lac.Fn{
			Kind: lac.FnKind(fb & 7),
			C0:   fb&(1<<3) != 0,
			C1:   fb&(1<<4) != 0,
			C2:   fb&(1<<5) != 0,
			OutC: fb&(1<<6) != 0,
		}
		k := snCount(fn.Kind)
		if k < 0 {
			return 0, 0, nil, tr, fmt.Errorf("%w: candidate %d has function kind %d", ErrProtocol, i, fn.Kind)
		}
		var sns []int
		if k > 0 {
			sns = make([]int, k)
			for j := range sns {
				sns[j] = int(d.uvarint())
			}
		}
		if d.err != nil {
			return 0, 0, nil, tr, d.err
		}
		lacs = append(lacs, &lac.LAC{Target: target, SNs: sns, Fn: fn})
	}
	if ver >= protoVersionTrace {
		tr.round = int(d.uvarint()) - 1
		tr.spanID = d.uvarint()
	}
	if d.err != nil {
		return 0, 0, nil, tr, d.err
	}
	if len(d.buf) != 0 {
		return 0, 0, nil, tr, fmt.Errorf("%w: %d trailing bytes in eval", ErrProtocol, len(d.buf))
	}
	return epoch, mode, lacs, tr, nil
}

// encodeResult builds the result payload: one Float64bits per
// candidate, in slice order.
func encodeResult(deltas []float64) []byte {
	buf := make([]byte, 0, 10+8*len(deltas))
	buf = binary.AppendUvarint(buf, uint64(len(deltas)))
	for _, v := range deltas {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// Evaluator-side telemetry stages, named per batch step.
const (
	stageFrameDecode byte = iota + 1
	stageEpochApply
	stageSimulate
	stageEstimate
	stageEncode
)

// stageName maps a telemetry stage to its span name in the merged
// trace.
func stageName(s byte) string {
	switch s {
	case stageFrameDecode:
		return "remote:frame-decode"
	case stageEpochApply:
		return "remote:epoch-apply"
	case stageSimulate:
		return "remote:simulate"
	case stageEstimate:
		return "remote:estimate"
	case stageEncode:
		return "remote:encode"
	}
	return "remote:unknown"
}

// remoteSpan is one evaluator-side telemetry span. start and dur are
// nanoseconds on the evaluator's monotonic clock (since its Serve
// started); the client maps start onto its own timeline through the
// connection's clockMap.
type remoteSpan struct {
	stage  byte
	round  int // -1 when the evaluator did not know the round yet
	parent uint64
	start  int64
	dur    int64
}

// maxTelemetry bounds the telemetry span count in one result frame.
const maxTelemetry = 1 << 16

// appendResultTrace appends the version-2 telemetry suffix to an
// encoded result payload.
func appendResultTrace(buf []byte, tel []remoteSpan) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(tel)))
	for _, s := range tel {
		buf = append(buf, s.stage)
		buf = binary.AppendUvarint(buf, uint64(s.round+1))
		buf = binary.AppendUvarint(buf, s.parent)
		buf = binary.AppendUvarint(buf, uint64(s.start))
		buf = binary.AppendUvarint(buf, uint64(s.dur))
	}
	return buf
}

// decodeResult decodes a result payload at the session's negotiated
// protocol version; version 2 results carry telemetry spans after the
// deltas.
func decodeResult(payload []byte, want int, ver byte) ([]float64, []remoteSpan, error) {
	d := wireDecoder{buf: payload}
	n := int(d.uvarint())
	if d.err != nil {
		return nil, nil, d.err
	}
	if n != want {
		return nil, nil, fmt.Errorf("%w: result carries %d values, want %d", ErrProtocol, n, want)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.u64())
	}
	var tel []remoteSpan
	if ver >= protoVersionTrace {
		k := int(d.uvarint())
		if d.err == nil && (k < 0 || k > maxTelemetry) {
			return nil, nil, fmt.Errorf("%w: telemetry span count %d out of range", ErrProtocol, k)
		}
		if d.err == nil && k > 0 {
			tel = make([]remoteSpan, 0, k)
			for i := 0; i < k; i++ {
				sp := remoteSpan{
					stage:  d.byte(),
					round:  int(d.uvarint()) - 1,
					parent: d.uvarint(),
					start:  int64(d.uvarint()),
					dur:    int64(d.uvarint()),
				}
				tel = append(tel, sp)
			}
		}
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes in result", ErrProtocol, len(d.buf))
	}
	return out, tel, nil
}

// wireDecoder consumes a payload front to back, latching the first
// error (same discipline as the aig codec).
type wireDecoder struct {
	buf []byte
	err error
}

func (d *wireDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload", ErrProtocol)
	}
}

func (d *wireDecoder) byte() byte {
	if d.err != nil || len(d.buf) == 0 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *wireDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *wireDecoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *wireDecoder) words(n int) []uint64 {
	if d.err != nil || len(d.buf) < 8*n {
		d.fail()
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(d.buf[8*i:])
	}
	d.buf = d.buf[8*n:]
	return out
}

func (d *wireDecoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}
