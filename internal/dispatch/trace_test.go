package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"accals/internal/circuits"
	"accals/internal/errmetric"
	"accals/internal/estimator"
	"accals/internal/faultinject"
	"accals/internal/lac"
	"accals/internal/obs"
)

// startServerCfg runs a configured Server on a loopback listener for
// the test's lifetime and returns its address.
func startServerCfg(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

// TestProtocolCompatLegacyEvaluator pins the mixed-fleet interop
// contract: a tracing client against a pre-trace evaluator downgrades
// the connection to protocol version 1 (sticky, one redial) and stays
// bit-identical to local evaluation — it just contributes no remote
// spans.
func TestProtocolCompatLegacyEvaluator(t *testing.T) {
	addr := startServerCfg(t, &Server{Workers: 1, legacyV1: true})
	g := circuits.ArrayMult(4)
	kind := errmetric.ER
	p, res, cmp, cands := setup(t, g, kind)
	est := estimator.New(1)
	want := localEval(est, g, res, cmp, cands, false, nil)
	wantD := snapshot(cands)

	rec := obs.NewRecorder()
	var trace bytes.Buffer
	rec.AddTracer(obs.NewTracer(&trace, obs.TraceJSONL))

	pool := NewPool([]string{addr, addr}, kind, g, p, nil)
	pool.MinBatch = 1
	pool.TraceID = rec.TraceID()
	defer pool.Close()

	for round := 0; round < 3; round++ {
		rec.BeginRound(round)
		clear(cands)
		got := pool.EstimateAll(est, g, res, cmp, cands, false, rec)
		if got != want {
			t.Fatalf("round %d: current error %v, want %v", round, got, want)
		}
		for i := range cands {
			if cands[i].DeltaE != wantD[i] {
				t.Fatalf("round %d cand %d: DeltaE %v, want %v", round, i, cands[i].DeltaE, wantD[i])
			}
		}
	}
	for i, c := range pool.conns {
		if !c.v1only || c.ver != protoVersion {
			t.Errorf("conn %d: v1only=%v ver=%d, want sticky v1 downgrade", i, c.v1only, c.ver)
		}
	}
	if sum := rec.Summary(); sum.RemoteSpans != 0 {
		t.Errorf("legacy evaluator produced %d remote spans, want 0", sum.RemoteSpans)
	}
	// The rpc lane still traces the local view of each round trip.
	if !strings.Contains(trace.String(), `"rpc:eval"`) {
		t.Errorf("trace missing rpc:eval spans:\n%s", trace.String())
	}
}

// TestRemoteTelemetryEndToEnd runs a traced pool against a current
// server and checks the evaluator's spans land on the merged timeline:
// counted in the summary, clock-mapped into the run's local time
// range, and attributed to the evaluator's process lane.
func TestRemoteTelemetryEndToEnd(t *testing.T) {
	addr := startServer(t, 1)
	g := circuits.ArrayMult(4)
	kind := errmetric.NMED
	p, res, cmp, cands := setup(t, g, kind)
	est := estimator.New(1)
	want := localEval(est, g, res, cmp, cands, false, nil)
	wantD := snapshot(cands)

	rec := obs.NewRecorder()
	var trace bytes.Buffer
	tracer := obs.NewTracer(&trace, obs.TraceJSONL)
	rec.AddTracer(tracer)

	pool := NewPool([]string{addr, addr}, kind, g, p, nil)
	pool.MinBatch = 1
	pool.TraceID = rec.TraceID()
	defer pool.Close()

	t0 := time.Now()
	rec.BeginRound(5)
	clear(cands)
	if got := pool.EstimateAll(est, g, res, cmp, cands, false, rec); got != want {
		t.Fatalf("current error %v, want %v", got, want)
	}
	elapsed := time.Since(t0)
	for i := range cands {
		if cands[i].DeltaE != wantD[i] {
			t.Fatalf("cand %d: DeltaE %v, want %v", i, cands[i].DeltaE, wantD[i])
		}
	}
	sum := rec.Summary()
	if sum.RemoteSpans == 0 {
		t.Fatal("no remote telemetry spans recorded")
	}
	if sum.RemoteBusySeconds < 0 {
		t.Fatalf("remote busy seconds %v", sum.RemoteBusySeconds)
	}

	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	type line struct {
		TUS   int64  `json:"t_us"`
		DurUS int64  `json:"dur_us"`
		Phase string `json:"phase"`
		Round int    `json:"round"`
		Proc  string `json:"proc"`
		PID   int    `json:"pid"`
	}
	var remote, rpc int
	for _, text := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(text), &l); err != nil {
			t.Fatalf("bad trace line %q: %v", text, err)
		}
		if strings.HasPrefix(l.Phase, "rpc:") {
			rpc++
			if l.Round != 5 {
				t.Errorf("rpc span round %d, want 5", l.Round)
			}
		}
		if strings.HasPrefix(l.Phase, "remote:") {
			remote++
			if l.PID < obs.PIDEvaluatorBase {
				t.Errorf("remote span pid %d, want >= %d", l.PID, obs.PIDEvaluatorBase)
			}
			if !strings.Contains(l.Proc, "evaluator") || !strings.Contains(l.Proc, "pid ") {
				t.Errorf("remote span proc %q", l.Proc)
			}
			// Clock-mapped onto the local timeline: the span must start
			// within the round's wall-clock window (with rtt/2 slack on
			// either side; loopback rtt is far below a second).
			if l.TUS < -1e6 || time.Duration(l.TUS)*time.Microsecond > elapsed+time.Second {
				t.Errorf("remote span t_us %d outside run window (%v)", l.TUS, elapsed)
			}
			if l.Round != 5 && l.Round != -1 {
				t.Errorf("remote span round %d, want 5", l.Round)
			}
		}
	}
	if remote == 0 || rpc == 0 {
		t.Fatalf("trace has %d remote and %d rpc spans, want both > 0", remote, rpc)
	}
	if int64(remote) != sum.RemoteSpans {
		t.Errorf("trace has %d remote spans, summary says %d", remote, sum.RemoteSpans)
	}
}

// TestInflightGaugeDrainsOnFailover arms every transport fault point
// and checks the dispatch bookkeeping survives: the in-flight gauge
// returns to zero after every round (no leaked increments on error
// paths) and the RPC latency histogram saw the successful round trips.
func TestInflightGaugeDrainsOnFailover(t *testing.T) {
	addr := startServer(t, 1)
	g := circuits.ArrayMult(4)
	kind := errmetric.ER
	p, res, cmp, cands := setup(t, g, kind)
	est := estimator.New(1)
	want := localEval(est, g, res, cmp, cands, false, nil)

	spec := FaultConnect + ":error:0.3," + FaultSend + ":error:0.3," + FaultFrame + ":truncate:0.3:0.4"
	inj, err := faultinject.Parse(11, spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	pool := NewPool([]string{addr, addr, addr}, kind, g, p, inj)
	pool.MinBatch = 1
	defer pool.Close()

	for round := 0; round < 6; round++ {
		clear(cands)
		if got := pool.EstimateAll(est, g, res, cmp, cands, false, rec); got != want {
			t.Fatalf("round %d: %v != %v", round, got, want)
		}
	}
	var sb strings.Builder
	if err := rec.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "accals_dispatch_inflight 0") {
		t.Errorf("in-flight gauge did not drain to zero:\n%s", grepMetric(text, "accals_dispatch_inflight"))
	}
	if !strings.Contains(text, "accals_dispatch_rpc_seconds_count") ||
		strings.Contains(text, "accals_dispatch_rpc_seconds_count 0\n") {
		t.Errorf("rpc latency histogram empty or missing:\n%s", grepMetric(text, "accals_dispatch_rpc_seconds"))
	}
	// The fault mix must actually have exercised both outcomes.
	sum := rec.Summary()
	if sum.DispatchFailovers == 0 || sum.DispatchRemoteBatches == 0 {
		t.Fatalf("fault mix did not exercise both paths: %d failovers, %d remote", sum.DispatchFailovers, sum.DispatchRemoteBatches)
	}
}

// grepMetric pulls one metric family's lines out of an exposition dump
// for failure messages.
func grepMetric(text, name string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, name) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestInitCodecVersions pins the version-gated init layout: an empty
// trace ID produces the exact version-1 bytes, a trace ID selects
// version 2 and round-trips, and unknown versions are rejected with
// the error the client's downgrade sniffs for.
func TestInitCodecVersions(t *testing.T) {
	g := circuits.RCA(4)
	p, _, _, _ := setup(t, g, errmetric.ER)
	ref := g.AppendBinary(nil)

	v1 := encodeInit(errmetric.ER, ref, p, "")
	if v1[0] != protoVersion {
		t.Fatalf("v1 version byte %d", v1[0])
	}
	req, err := decodeInit(v1)
	if err != nil || req.ver != protoVersion || req.traceID != "" {
		t.Fatalf("v1 decode: ver %d traceID %q err %v", req.ver, req.traceID, err)
	}

	v2 := encodeInit(errmetric.ER, ref, p, "0123456789abcdef")
	if v2[0] != protoVersionTrace {
		t.Fatalf("v2 version byte %d", v2[0])
	}
	if !bytes.Equal(v2[1:len(v1)], v1[1:]) {
		t.Fatal("v2 must extend the v1 layout, not reshape it")
	}
	req, err = decodeInit(v2)
	if err != nil || req.ver != protoVersionTrace || req.traceID != "0123456789abcdef" {
		t.Fatalf("v2 decode: ver %d traceID %q err %v", req.ver, req.traceID, err)
	}
	if !bytes.Equal(req.ref, ref) {
		t.Fatal("v2 reference circuit mangled")
	}

	bad := append([]byte(nil), v1...)
	bad[0] = 9
	if _, err := decodeInit(bad); err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("version 9 error = %v, want protocol version reject", err)
	}
}

func TestInitOKCodec(t *testing.T) {
	nanos, pid, err := decodeInitOK(encodeInitOK(123456789012, 4242))
	if err != nil || nanos != 123456789012 || pid != 4242 {
		t.Fatalf("got %d/%d/%v", nanos, pid, err)
	}
	if _, _, err := decodeInitOK([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated init ack must fail")
	}
	if _, _, err := decodeInitOK(append(encodeInitOK(1, 2), 0)); err == nil {
		t.Fatal("trailing bytes in init ack must fail")
	}
}

func TestEvalTraceCodec(t *testing.T) {
	lacs := []*lac.LAC{
		{Target: 10, SNs: []int{2, 5}, Fn: lac.Fn{Kind: lac.FnAnd}},
		{Target: 11, Fn: lac.Fn{Kind: lac.FnConst1}},
	}
	base := encodeEval(7, modeFast, lacs)

	// v1 payload at v1: no context, round unknown.
	_, _, _, tr, err := decodeEval(base, protoVersion)
	if err != nil || tr.round != -1 || tr.spanID != 0 {
		t.Fatalf("v1: tr %+v err %v", tr, err)
	}
	// v2 payload at v2: context round-trips, including round -1 → 0.
	for _, round := range []int{-1, 0, 12} {
		p2 := appendEvalTrace(append([]byte(nil), base...), round, 99)
		epoch, mode, got, tr, err := decodeEval(p2, protoVersionTrace)
		if err != nil || epoch != 7 || mode != modeFast || len(got) != 2 {
			t.Fatalf("v2 round %d: epoch %d mode %d n %d err %v", round, epoch, mode, len(got), err)
		}
		if tr.round != round || tr.spanID != 99 {
			t.Fatalf("v2 round %d: tr %+v", round, tr)
		}
	}
	// v2 payload at v1: the suffix is trailing garbage to an old
	// decoder — it must refuse, not misread.
	p2 := appendEvalTrace(append([]byte(nil), base...), 3, 99)
	if _, _, _, _, err := decodeEval(p2, protoVersion); err == nil {
		t.Fatal("v2 suffix must not pass a v1 decoder")
	}
	// v2 decoder on a bare v1 payload: context is mandatory at v2.
	if _, _, _, _, err := decodeEval(base, protoVersionTrace); err == nil {
		t.Fatal("missing v2 suffix must fail at v2")
	}
}

func TestResultTraceCodec(t *testing.T) {
	deltas := []float64{1.5, -2.25, 0}
	tel := []remoteSpan{
		{stage: stageFrameDecode, round: -1, parent: 0, start: 10, dur: 5},
		{stage: stageSimulate, round: 3, parent: 9, start: 100, dur: 50},
		{stage: stageEncode, round: 3, parent: 9, start: 160, dur: 1},
	}
	payload := appendResultTrace(encodeResult(deltas), tel)
	got, gotTel, err := decodeResult(payload, 3, protoVersionTrace)
	if err != nil {
		t.Fatal(err)
	}
	for i := range deltas {
		if got[i] != deltas[i] {
			t.Fatalf("delta %d: %v != %v", i, got[i], deltas[i])
		}
	}
	if len(gotTel) != len(tel) {
		t.Fatalf("%d spans, want %d", len(gotTel), len(tel))
	}
	for i := range tel {
		if gotTel[i] != tel[i] {
			t.Fatalf("span %d: %+v != %+v", i, gotTel[i], tel[i])
		}
	}
	// v1 result at v1 still decodes with no telemetry.
	v1got, v1tel, err := decodeResult(encodeResult(deltas), 3, protoVersion)
	if err != nil || v1tel != nil || len(v1got) != 3 {
		t.Fatalf("v1: %v / %v / %v", v1got, v1tel, err)
	}
	// An empty telemetry list is one zero byte, and valid.
	if _, tel, err := decodeResult(appendResultTrace(encodeResult(deltas), nil), 3, protoVersionTrace); err != nil || len(tel) != 0 {
		t.Fatalf("empty telemetry: %v / %v", tel, err)
	}
}

// TestTraceOffHotPathAllocFree pins the zero-cost contract of the
// instrumentation the trace feature added to the dispatch hot path:
// with no tracer attached, the per-span recorder entry points and the
// TraceID gate allocate nothing.
func TestTraceOffHotPathAllocFree(t *testing.T) {
	rec := obs.NewRecorder() // metrics only, no tracers
	pool := &Pool{}          // TraceID empty: the traced branches are skipped
	allocs := testing.AllocsPerRun(1000, func() {
		if pool.TraceID != "" {
			t.Fatal("unreachable")
		}
		rec.EmitEvent(obs.TraceEvent{Name: "rpc:eval", Round: -1})
		rec.CurrentRound()
		rec.CountRemoteSpan(time.Microsecond)
		if rec.Tracing() {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("trace-off hot path allocates %.1f per op, want 0", allocs)
	}
}
