package dispatch

import "time"

// clockMap maps an evaluator's private monotonic clock onto the
// client's timeline. The version-2 init handshake is a monotonic
// ping: the client stamps t0 before sending init and t1 after the
// acknowledgement arrives; the ack carries the evaluator's monotonic
// reading taken somewhere inside that window. The midpoint estimate
// anchors the reading at t0 + rtt/2, so any mapped remote instant is
// off by at most rtt/2 — the offset is recovered within the RTT
// bound, which is the best a single ping can do.
//
// Both sides use monotonic readings only (the evaluator ships
// nanoseconds since its Serve started; t0/t1 carry Go's monotonic
// component, which time.Time.Add preserves), so wall-clock steps on
// either machine never skew mapped spans.
type clockMap struct {
	at   time.Time // client instant the server reading is anchored to
	base int64     // server monotonic nanos at that instant
	rtt  time.Duration
}

// newClockMap builds the mapping from one init ping: client stamps t0
// (send) and t1 (ack received), serverNanos is the evaluator's
// monotonic reading carried by the ack.
func newClockMap(t0, t1 time.Time, serverNanos int64) clockMap {
	rtt := t1.Sub(t0)
	if rtt < 0 {
		rtt = 0
	}
	return clockMap{at: t0.Add(rtt / 2), base: serverNanos, rtt: rtt}
}

// toLocal maps an evaluator monotonic reading onto the client's
// timeline.
func (c clockMap) toLocal(serverNanos int64) time.Time {
	return c.at.Add(time.Duration(serverNanos - c.base))
}
