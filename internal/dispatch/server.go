package dispatch

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"accals/internal/aig"
	"accals/internal/errmetric"
	"accals/internal/estimator"
	"accals/internal/lac"
	"accals/internal/simulate"
)

// Server is an evaluator process's accept loop: each connection is one
// client session holding its own comparator, estimator, simulation
// runner and current-epoch circuit, so concurrent clients never share
// mutable state. Workers bounds the evaluation parallelism per
// session (0 = all CPUs).
type Server struct {
	Workers int

	// legacyV1 makes the server behave like a pre-trace build: it
	// rejects any init above protocol version 1 and never records
	// telemetry. Test-only — it pins the old-evaluator interop path
	// without keeping an old binary around.
	legacyV1 bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	start time.Time // monotonic base of telemetry timestamps
}

// Serve accepts sessions on ln until ctx is cancelled or the listener
// fails. It closes the listener and every live session on shutdown and
// returns nil on clean cancellation.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close()
	s.mu.Lock()
	if s.start.IsZero() {
		s.start = time.Now()
	}
	s.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.track(nc, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.track(nc, false)
			defer nc.Close()
			s.session(nc)
		}()
	}
}

func (s *Server) track(nc net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	if add {
		s.conns[nc] = struct{}{}
	} else {
		delete(s.conns, nc)
	}
}

// session services one client connection until EOF or a fatal error.
// Malformed frames are answered with an error frame where possible;
// the client treats any error as grounds for local failover, so the
// server never needs to guess at recovery.
func (s *Server) session(nc net.Conn) {
	br := bufio.NewReaderSize(nc, 1<<16)
	bw := bufio.NewWriterSize(nc, 1<<16)
	var (
		cmp    *errmetric.Comparator
		est    *estimator.Estimator
		runner *simulate.Runner
		pats   *simulate.Patterns
		epoch  uint64
		g      *aig.Graph
		res    *simulate.Result

		ver byte = protoVersion
		tel []remoteSpan // telemetry pending until the next result frame
	)
	// now reads the evaluator's monotonic clock — the time base the
	// init handshake exports to the client.
	now := func() int64 { return int64(time.Since(s.start)) }
	// span records one telemetry stage; rounds and parents are
	// unknown until an eval frame supplies the trace context, so
	// pending spans are stamped retroactively there.
	span := func(stage byte, start int64) {
		if ver >= protoVersionTrace && len(tel) < maxTelemetry-1 {
			tel = append(tel, remoteSpan{stage: stage, round: -1, start: start, dur: now() - start})
		}
	}
	reply := func(typ byte, payload []byte) bool {
		if _, err := writeFrame(bw, typ, payload); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	fail := func(err error) bool {
		return reply(frameError, []byte(err.Error()))
	}
	for {
		typ, payload, _, err := readFrame(br)
		if err != nil {
			return // EOF or dead transport: nothing sensible to reply
		}
		switch typ {
		case frameInit:
			t0 := now()
			req, err := decodeInit(payload)
			if err != nil {
				fail(err)
				return
			}
			if s.legacyV1 && req.ver != protoVersion {
				fail(fmt.Errorf("%w: protocol version %d, want %d", ErrProtocol, req.ver, protoVersion))
				return
			}
			ref, err := aig.DecodeBinary(req.ref)
			if err != nil {
				fail(err)
				return
			}
			cmp, err = errmetric.NewComparatorChecked(req.kind, ref, req.pats)
			if err != nil {
				fail(err)
				return
			}
			pats = req.pats
			est = estimator.New(s.Workers)
			runner = simulate.NewRunner(s.Workers)
			epoch, g, res = 0, nil, nil
			ver, tel = req.ver, nil
			span(stageFrameDecode, t0)
			var ack []byte
			if ver >= protoVersionTrace {
				// Clock-offset handshake: ship our monotonic reading
				// and OS pid so the client can place our spans on its
				// timeline and label our process lane.
				ack = encodeInitOK(now(), os.Getpid())
			}
			if !reply(frameOK, ack) {
				return
			}

		case frameEpoch:
			if cmp == nil {
				fail(fmt.Errorf("%w: epoch before init", ErrProtocol))
				return
			}
			t0 := now()
			id, gBytes, err := decodeEpoch(payload)
			if err != nil {
				fail(err)
				return
			}
			ng, err := aig.DecodeBinary(gBytes)
			if err != nil {
				fail(err)
				return
			}
			span(stageEpochApply, t0)
			t1 := now()
			nres, err := runner.Run(ng, pats)
			if err != nil {
				fail(err)
				return
			}
			span(stageSimulate, t1)
			runner.Release(res)
			epoch, g, res = id, ng, nres
			if !reply(frameOK, nil) {
				return
			}

		case frameEval:
			if g == nil {
				fail(fmt.Errorf("%w: eval before epoch", ErrProtocol))
				return
			}
			t0 := now()
			id, mode, lacs, tr, err := decodeEval(payload, ver)
			if err != nil {
				fail(err)
				return
			}
			// Pending spans (init/epoch work, and this decode) belong
			// to the round whose eval triggered them.
			span(stageFrameDecode, t0)
			for i := range tel {
				if tel[i].round < 0 {
					tel[i].round = tr.round
					tel[i].parent = tr.spanID
				}
			}
			if id != epoch {
				// Stale or future epoch: the client pushes the current
				// circuit before every eval on this connection, so a
				// mismatch means a protocol bug or a crossed session —
				// refuse rather than answer for the wrong circuit.
				if !fail(fmt.Errorf("%w: eval for epoch %d, have %d", ErrProtocol, id, epoch)) {
					return
				}
				continue
			}
			t1 := now()
			deltas, err := evalBatch(est, g, res, cmp, lacs, mode)
			if err != nil {
				fail(err)
				return
			}
			span(stageEstimate, t1)
			t2 := now()
			out := encodeResult(deltas)
			if ver >= protoVersionTrace {
				tel = append(tel, remoteSpan{
					stage: stageEncode, round: tr.round, parent: tr.spanID,
					start: t2, dur: now() - t2,
				})
				out = appendResultTrace(out, tel)
				tel = tel[:0]
			}
			if !reply(frameResult, out) {
				return
			}

		default:
			fail(fmt.Errorf("%w: unexpected frame type %d", ErrProtocol, typ))
			return
		}
	}
}

// evalBatch scores a candidate slice against the session's current
// circuit. Candidates are validated before touching the estimator: one
// referencing nodes outside the graph (or a non-AND target) means the
// client and server disagree about the epoch and must be refused, not
// scored. DeltaE per candidate is a pure function of (graph, patterns,
// metric, candidate), so the returned values are bit-identical to the
// ones local evaluation of any enclosing batch would produce.
func evalBatch(est *estimator.Estimator, g *aig.Graph, res *simulate.Result, cmp *errmetric.Comparator, lacs []*lac.LAC, mode byte) ([]float64, error) {
	for i, l := range lacs {
		if l.Target <= 0 || l.Target >= g.NumNodes() || !g.IsAnd(l.Target) {
			return nil, fmt.Errorf("%w: candidate %d targets node %d", ErrProtocol, i, l.Target)
		}
		for _, sn := range l.SNs {
			if sn < 0 || sn >= l.Target {
				return nil, fmt.Errorf("%w: candidate %d has substitute node %d outside [0, %d)", ErrProtocol, i, sn, l.Target)
			}
		}
	}
	if mode == modeExact {
		est.EstimateAllExactRec(g, res, cmp, lacs, nil)
	} else {
		est.EstimateAllRec(g, res, cmp, lacs, nil)
	}
	deltas := make([]float64, len(lacs))
	for i, l := range lacs {
		deltas[i] = l.DeltaE
	}
	return deltas, nil
}
