package dispatch

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"

	"accals/internal/aig"
	"accals/internal/errmetric"
	"accals/internal/estimator"
	"accals/internal/lac"
	"accals/internal/simulate"
)

// Server is an evaluator process's accept loop: each connection is one
// client session holding its own comparator, estimator, simulation
// runner and current-epoch circuit, so concurrent clients never share
// mutable state. Workers bounds the evaluation parallelism per
// session (0 = all CPUs).
type Server struct {
	Workers int

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Serve accepts sessions on ln until ctx is cancelled or the listener
// fails. It closes the listener and every live session on shutdown and
// returns nil on clean cancellation.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close()
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.track(nc, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.track(nc, false)
			defer nc.Close()
			s.session(nc)
		}()
	}
}

func (s *Server) track(nc net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	if add {
		s.conns[nc] = struct{}{}
	} else {
		delete(s.conns, nc)
	}
}

// session services one client connection until EOF or a fatal error.
// Malformed frames are answered with an error frame where possible;
// the client treats any error as grounds for local failover, so the
// server never needs to guess at recovery.
func (s *Server) session(nc net.Conn) {
	br := bufio.NewReaderSize(nc, 1<<16)
	bw := bufio.NewWriterSize(nc, 1<<16)
	var (
		cmp    *errmetric.Comparator
		est    *estimator.Estimator
		runner *simulate.Runner
		pats   *simulate.Patterns
		epoch  uint64
		g      *aig.Graph
		res    *simulate.Result
	)
	reply := func(typ byte, payload []byte) bool {
		if _, err := writeFrame(bw, typ, payload); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	fail := func(err error) bool {
		return reply(frameError, []byte(err.Error()))
	}
	for {
		typ, payload, _, err := readFrame(br)
		if err != nil {
			return // EOF or dead transport: nothing sensible to reply
		}
		switch typ {
		case frameInit:
			kind, refBytes, p, err := decodeInit(payload)
			if err != nil {
				fail(err)
				return
			}
			ref, err := aig.DecodeBinary(refBytes)
			if err != nil {
				fail(err)
				return
			}
			cmp, err = errmetric.NewComparatorChecked(kind, ref, p)
			if err != nil {
				fail(err)
				return
			}
			pats = p
			est = estimator.New(s.Workers)
			runner = simulate.NewRunner(s.Workers)
			epoch, g, res = 0, nil, nil
			if !reply(frameOK, nil) {
				return
			}

		case frameEpoch:
			if cmp == nil {
				fail(fmt.Errorf("%w: epoch before init", ErrProtocol))
				return
			}
			id, gBytes, err := decodeEpoch(payload)
			if err != nil {
				fail(err)
				return
			}
			ng, err := aig.DecodeBinary(gBytes)
			if err != nil {
				fail(err)
				return
			}
			nres, err := runner.Run(ng, pats)
			if err != nil {
				fail(err)
				return
			}
			runner.Release(res)
			epoch, g, res = id, ng, nres
			if !reply(frameOK, nil) {
				return
			}

		case frameEval:
			if g == nil {
				fail(fmt.Errorf("%w: eval before epoch", ErrProtocol))
				return
			}
			id, mode, lacs, err := decodeEval(payload)
			if err != nil {
				fail(err)
				return
			}
			if id != epoch {
				// Stale or future epoch: the client pushes the current
				// circuit before every eval on this connection, so a
				// mismatch means a protocol bug or a crossed session —
				// refuse rather than answer for the wrong circuit.
				if !fail(fmt.Errorf("%w: eval for epoch %d, have %d", ErrProtocol, id, epoch)) {
					return
				}
				continue
			}
			deltas, err := evalBatch(est, g, res, cmp, lacs, mode)
			if err != nil {
				fail(err)
				return
			}
			if !reply(frameResult, encodeResult(deltas)) {
				return
			}

		default:
			fail(fmt.Errorf("%w: unexpected frame type %d", ErrProtocol, typ))
			return
		}
	}
}

// evalBatch scores a candidate slice against the session's current
// circuit. Candidates are validated before touching the estimator: one
// referencing nodes outside the graph (or a non-AND target) means the
// client and server disagree about the epoch and must be refused, not
// scored. DeltaE per candidate is a pure function of (graph, patterns,
// metric, candidate), so the returned values are bit-identical to the
// ones local evaluation of any enclosing batch would produce.
func evalBatch(est *estimator.Estimator, g *aig.Graph, res *simulate.Result, cmp *errmetric.Comparator, lacs []*lac.LAC, mode byte) ([]float64, error) {
	for i, l := range lacs {
		if l.Target <= 0 || l.Target >= g.NumNodes() || !g.IsAnd(l.Target) {
			return nil, fmt.Errorf("%w: candidate %d targets node %d", ErrProtocol, i, l.Target)
		}
		for _, sn := range l.SNs {
			if sn < 0 || sn >= l.Target {
				return nil, fmt.Errorf("%w: candidate %d has substitute node %d outside [0, %d)", ErrProtocol, i, sn, l.Target)
			}
		}
	}
	if mode == modeExact {
		est.EstimateAllExactRec(g, res, cmp, lacs, nil)
	} else {
		est.EstimateAllRec(g, res, cmp, lacs, nil)
	}
	deltas := make([]float64, len(lacs))
	for i, l := range lacs {
		deltas[i] = l.DeltaE
	}
	return deltas, nil
}
