package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"accals/internal/aig"
	"accals/internal/errmetric"
	"accals/internal/estimator"
	"accals/internal/faultinject"
	"accals/internal/lac"
	"accals/internal/obs"
	"accals/internal/par"
	"accals/internal/simulate"
)

// Fault-injection points on the client side of the evaluator
// transport (see internal/faultinject). All of them drive the same
// failover: the affected slice is re-evaluated locally.
const (
	// FaultConnect fails the dial of an evaluator connection.
	FaultConnect = "dispatch.connect"
	// FaultSend fails a request before any bytes are written.
	FaultSend = "dispatch.send"
	// FaultFrame truncates a request frame mid-write (a torn frame);
	// the connection is closed immediately after, like a crashed peer.
	FaultFrame = "dispatch.frame"
	// FaultRecvDelay delays reading the response (a slow evaluator).
	FaultRecvDelay = "dispatch.recv.delay"
)

// defaultTimeout bounds one request/response round trip; a hung
// evaluator becomes a failover, never a hung synthesis round.
const defaultTimeout = 30 * time.Second

// defaultMinBatch is the minimum candidate count per remote share:
// below it the RPC overhead exceeds the evaluation itself and the
// whole batch stays local.
const defaultMinBatch = 32

// Pool fans candidate batches out to a fixed set of evaluator
// processes, keeping one lazily-dialed connection per address. It is
// bound to one run's metric, pattern set and reference circuit at
// construction (the init frame); per round it pushes the current
// circuit to each connection at most once (the epoch frame, re-encoded
// only when the circuit pointer changes) and splits each EstimateAll
// into one slice per evaluator plus a local slice evaluated on the
// calling goroutine.
//
// A Pool is not safe for concurrent use: like the Estimator it serves,
// the flows call it once per round from the round loop.
type Pool struct {
	// MinBatch is the minimum candidates per remote share; batches
	// whose shares would fall below it are evaluated locally. Zero
	// means the default (32).
	MinBatch int
	// Timeout bounds one RPC round trip. Zero means the default (30s).
	Timeout time.Duration
	// TraceID, when non-empty, upgrades connections to protocol
	// version 2: eval frames carry trace context and evaluators ship
	// back per-batch telemetry spans. Set it before the first
	// EstimateAll (only when tracing is on — the empty default keeps
	// the version-1 wire bytes and the zero-cost hot path). An old
	// evaluator that rejects version 2 downgrades that connection to
	// version 1; results stay bit-identical either way.
	TraceID string

	kind    errmetric.Kind
	pats    *simulate.Patterns
	refEnc  []byte
	initEnc []byte
	initV2  []byte // built on first traced EstimateAll
	inj     *faultinject.Injector
	conns   []*evalConn

	epoch    uint64
	epochG   *aig.Graph
	epochEnc []byte
}

// NewPool returns a pool over the given evaluator addresses, bound to
// one run's metric, reference (exact) circuit and pattern set. inj may
// be nil. Connections are dialed lazily on first use and re-dialed
// after failures, so a pool stays usable across evaluator restarts.
func NewPool(addrs []string, kind errmetric.Kind, ref *aig.Graph, pats *simulate.Patterns, inj *faultinject.Injector) *Pool {
	refEnc := ref.AppendBinary(nil)
	p := &Pool{
		kind:    kind,
		pats:    pats,
		refEnc:  refEnc,
		initEnc: encodeInit(kind, refEnc, pats, ""),
		inj:     inj,
	}
	for i, a := range addrs {
		p.conns = append(p.conns, &evalConn{addr: a, idx: i})
	}
	return p
}

// initFrame returns the init payload for the wanted protocol version.
// The v2 frame is built once, on the round loop's goroutine (see
// EstimateAll), never inside the per-connection goroutines.
func (p *Pool) initFrame(v2 bool) []byte {
	if !v2 {
		return p.initEnc
	}
	return p.initV2
}

// Evaluators returns the number of configured evaluator processes.
func (p *Pool) Evaluators() int { return len(p.conns) }

// Close closes every live connection. The pool may be used again
// afterwards; connections re-dial on demand.
func (p *Pool) Close() {
	for _, c := range p.conns {
		c.close()
	}
}

// EstimateAll scores every candidate's DeltaE like
// est.EstimateAllRec/EstimateAllExactRec, splitting the batch across
// the pool's evaluators plus a local share, and returns the current
// error. Results are bit-identical to local evaluation at any split:
// each candidate's score is split-invariant (see the package comment)
// and every slice writes disjoint DeltaE slots. A slice whose
// transport fails is re-evaluated locally after the join, so faults
// never change the outcome.
func (p *Pool) EstimateAll(est *estimator.Estimator, g *aig.Graph, res *simulate.Result, cmp *errmetric.Comparator, lacs []*lac.LAC, exact bool, rec *obs.Recorder) float64 {
	n := len(lacs)
	shares := len(p.conns) + 1
	minBatch := p.MinBatch
	if minBatch <= 0 {
		minBatch = defaultMinBatch
	}
	if len(p.conns) == 0 || n < minBatch*shares {
		return localEval(est, g, res, cmp, lacs, exact, rec)
	}
	if p.TraceID != "" && p.initV2 == nil {
		p.initV2 = encodeInit(p.kind, p.refEnc, p.pats, p.TraceID)
	}
	if p.epochG != g {
		p.epoch++
		p.epochG = g
		p.epochEnc = encodeEpoch(p.epoch, g.AppendBinary(nil))
	}
	mode := modeFast
	if exact {
		mode = modeExact
	}
	errs := make([]error, len(p.conns))
	var wg sync.WaitGroup
	for s := range p.conns {
		begin, end := par.Block(s, shares, n)
		if begin == end {
			continue
		}
		wg.Add(1)
		go func(s int, slice []*lac.LAC) {
			defer wg.Done()
			rec.DispatchInflight(1)
			defer rec.DispatchInflight(-1)
			errs[s] = p.conns[s].evalSlice(p, slice, mode, rec)
		}(s, lacs[begin:end])
	}
	begin, end := par.Block(shares-1, shares, n)
	curErr := localEval(est, g, res, cmp, lacs[begin:end], exact, rec)
	wg.Wait()
	for s := range p.conns {
		begin, end := par.Block(s, shares, n)
		if begin == end {
			continue
		}
		if errs[s] != nil {
			localEval(est, g, res, cmp, lacs[begin:end], exact, rec)
			rec.DispatchBatch(false)
		} else {
			rec.DispatchBatch(true)
		}
	}
	return curErr
}

// localEval runs the estimator on a slice (possibly empty — the
// estimator still returns the current error), in fast or exact mode.
func localEval(est *estimator.Estimator, g *aig.Graph, res *simulate.Result, cmp *errmetric.Comparator, lacs []*lac.LAC, exact bool, rec *obs.Recorder) float64 {
	if exact {
		return est.EstimateAllExactRec(g, res, cmp, lacs, rec)
	}
	return est.EstimateAllRec(g, res, cmp, lacs, rec)
}

// evalConn is one evaluator connection: lazily dialed, initialised
// with the run's init frame, and holding at most one pushed epoch.
type evalConn struct {
	addr   string
	idx    int // connection index: stable trace pid/tid lanes
	nc     net.Conn
	br     *bufio.Reader
	epoch  uint64
	inited bool

	// Trace state (meaningful only when the pool has a TraceID).
	ver    byte     // negotiated protocol version, set by ensure
	v1only bool     // sticky downgrade after a version reject
	clk    clockMap // evaluator clock mapping, from the init handshake
	proc   string   // trace process label: "evaluator <addr> (pid N)"
	spanID uint64   // parent span id of the next eval frame
}

func (c *evalConn) close() {
	if c.nc != nil {
		c.nc.Close()
		c.nc = nil
		c.br = nil
		c.inited = false
		c.epoch = 0
	}
}

// evalSlice pushes the current epoch if this connection hasn't seen it
// and evaluates one candidate slice, writing DeltaE into the slice's
// own (disjoint) slots. Any error leaves the connection closed for
// re-dial and the slice untouched for local failover.
func (c *evalConn) evalSlice(p *Pool, slice []*lac.LAC, mode byte, rec *obs.Recorder) error {
	if err := c.ensure(p, rec); err != nil {
		return err
	}
	var payload []byte
	if c.ver >= protoVersionTrace {
		c.spanID++
		payload = appendEvalTrace(encodeEval(p.epoch, mode, slice), rec.CurrentRound(), c.spanID)
	} else {
		payload = encodeEval(p.epoch, mode, slice)
	}
	typ, resp, err := c.roundTrip(p, frameEval, payload, rec)
	if err != nil {
		c.close()
		return err
	}
	if typ != frameResult {
		c.close()
		return remoteErr(typ, resp)
	}
	deltas, tel, err := decodeResult(resp, len(slice), c.ver)
	if err != nil {
		c.close()
		return err
	}
	c.emitTelemetry(tel, rec)
	for i, d := range deltas {
		slice[i].DeltaE = d
	}
	return nil
}

// emitTelemetry lands the evaluator's spans on the local timeline
// through the connection's clock mapping, on the connection's own
// trace process lane.
func (c *evalConn) emitTelemetry(tel []remoteSpan, rec *obs.Recorder) {
	if len(tel) == 0 {
		return
	}
	for _, sp := range tel {
		d := time.Duration(sp.dur)
		rec.CountRemoteSpan(d)
		rec.EmitEvent(obs.TraceEvent{
			Name:  stageName(sp.stage),
			Proc:  c.proc,
			PID:   obs.PIDEvaluatorBase + c.idx,
			Round: sp.round, // -1 resolves to the current round
			Start: c.clk.toLocal(sp.start),
			Dur:   d,
		})
	}
}

// ensure dials, initialises and epoch-syncs the connection as needed.
// When the pool carries a trace ID it offers protocol version 2; an
// old evaluator's version reject downgrades the connection to version
// 1 for its lifetime (redialing once), so mixed fleets keep working —
// those evaluators just contribute no remote spans.
func (c *evalConn) ensure(p *Pool, rec *obs.Recorder) error {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = defaultTimeout
	}
	if c.nc == nil {
		if p.inj != nil {
			if err := p.inj.Fail(FaultConnect); err != nil {
				return err
			}
		}
		nc, err := net.DialTimeout("tcp", c.addr, timeout)
		if err != nil {
			return err
		}
		c.nc = nc
		c.br = bufio.NewReaderSize(nc, 1<<16)
		c.inited = false
		c.epoch = 0
	}
	if !c.inited {
		wantV2 := p.TraceID != "" && !c.v1only
		t0 := time.Now()
		typ, resp, err := c.roundTrip(p, frameInit, p.initFrame(wantV2), rec)
		t1 := time.Now()
		if err != nil {
			c.close()
			return err
		}
		if typ != frameOK {
			c.close()
			if wantV2 && typ == frameError && bytes.Contains(resp, []byte("protocol version")) {
				c.v1only = true
				return c.ensure(p, rec)
			}
			return remoteErr(typ, resp)
		}
		c.ver = protoVersion
		if wantV2 {
			nanos, pid, err := decodeInitOK(resp)
			if err != nil {
				c.close()
				return err
			}
			c.ver = protoVersionTrace
			c.clk = newClockMap(t0, t1, nanos)
			c.proc = fmt.Sprintf("evaluator %s (pid %d)", c.addr, pid)
		}
		c.inited = true
	}
	if c.epoch != p.epoch {
		typ, resp, err := c.roundTrip(p, frameEpoch, p.epochEnc, rec)
		if err != nil {
			c.close()
			return err
		}
		if typ != frameOK {
			c.close()
			return remoteErr(typ, resp)
		}
		c.epoch = p.epoch
	}
	return nil
}

// roundTrip sends one request frame and reads the response frame,
// applying the per-round-trip deadline, the fault-injection points and
// the dispatch metrics.
func (c *evalConn) roundTrip(p *Pool, typ byte, payload []byte, rec *obs.Recorder) (byte, []byte, error) {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = defaultTimeout
	}
	if err := c.nc.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, nil, err
	}
	start := time.Now()
	if p.inj != nil {
		if err := p.inj.Fail(FaultSend); err != nil {
			return 0, nil, err
		}
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	frame := append(append(make([]byte, 0, 5+len(payload)), hdr[:]...), payload...)
	if p.inj != nil {
		if torn := p.inj.Data(FaultFrame, frame); len(torn) != len(frame) {
			c.nc.Write(torn)
			c.nc.Close() // torn frame: die like a crashed peer
			return 0, nil, fmt.Errorf("%w: torn frame injected", ErrProtocol)
		}
	}
	if _, err := c.nc.Write(frame); err != nil {
		return 0, nil, err
	}
	rec.DispatchBytes(len(frame), 0)
	if p.inj != nil {
		p.inj.Sleep(context.Background(), FaultRecvDelay)
	}
	rtyp, resp, rn, err := readFrame(c.br)
	if err != nil {
		return 0, nil, err
	}
	rec.DispatchBytes(0, rn)
	d := time.Since(start)
	rec.DispatchRPC(d)
	if p.TraceID != "" {
		// RPC lane span: wall time of the round trip on this
		// connection's dispatch thread, with the connection's measured
		// RTT as the network-share bound. Guarded by TraceID so the
		// untraced hot path stays allocation-free.
		rec.EmitEvent(obs.TraceEvent{
			Name:  rpcName(typ),
			TID:   obs.TIDDispatchBase + c.idx,
			Round: -1,
			Start: start,
			Dur:   d,
			NetUS: c.clk.rtt.Microseconds(),
		})
	}
	return rtyp, resp, nil
}

// rpcName names the trace span of one round trip by request frame
// type.
func rpcName(typ byte) string {
	switch typ {
	case frameInit:
		return "rpc:init"
	case frameEpoch:
		return "rpc:epoch"
	case frameEval:
		return "rpc:eval"
	}
	return "rpc:other"
}

func remoteErr(typ byte, resp []byte) error {
	if typ == frameError {
		return fmt.Errorf("%w: %s", ErrRemote, resp)
	}
	return fmt.Errorf("%w: unexpected response frame type %d", ErrProtocol, typ)
}
