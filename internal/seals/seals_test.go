package seals

import (
	"testing"

	"accals/internal/circuits"
	"accals/internal/core"
	"accals/internal/errmetric"
	"accals/internal/lac"
	"accals/internal/simulate"
)

func TestRunRespectsErrorBound(t *testing.T) {
	for _, kind := range []errmetric.Kind{errmetric.ER, errmetric.NMED} {
		g := circuits.ArrayMult(4)
		bound := 0.01
		res := Run(g, kind, bound, core.Options{})
		if res.Error > bound {
			t.Fatalf("%v: error %g exceeds bound", kind, res.Error)
		}
		if res.Final.NumAnds() >= g.NumAnds() {
			t.Fatalf("%v: no area reduction", kind)
		}
		p := simulate.Exhaustive(g.NumPIs())
		cmp := errmetric.NewComparator(kind, g, p)
		if e := cmp.Error(res.Final); e > bound {
			t.Fatalf("%v: independent error %g exceeds bound", kind, e)
		}
	}
}

func TestRunAppliesOneLACPerRound(t *testing.T) {
	g := circuits.CLA(8)
	res := Run(g, errmetric.ER, 0.02, core.Options{})
	for _, rs := range res.Rounds {
		if rs.AppliedLACs != 1 {
			t.Fatalf("round %d applied %d LACs", rs.Round, rs.AppliedLACs)
		}
	}
	if res.LACsApplied != len(res.Rounds) {
		t.Fatalf("LACsApplied %d != rounds %d", res.LACsApplied, len(res.Rounds))
	}
}

func TestAccALSUsesFewerRoundsThanSEALS(t *testing.T) {
	// The paper's headline: multi-LAC selection cuts the number of
	// rounds (and hence the runtime) substantially at similar quality.
	g := circuits.ArrayMult(4)
	bound := 0.05
	s := Run(g, errmetric.ER, bound, core.Options{})
	a := core.Run(g, errmetric.ER, bound, core.Options{})
	if len(a.Rounds) >= len(s.Rounds) {
		t.Fatalf("AccALS rounds (%d) not fewer than SEALS rounds (%d)",
			len(a.Rounds), len(s.Rounds))
	}
	// Quality stays comparable: within 25%% relative area.
	sa, aa := s.Final.NumAnds(), a.Final.NumAnds()
	if float64(aa) > 1.25*float64(sa)+2 {
		t.Fatalf("AccALS area %d much worse than SEALS %d", aa, sa)
	}
}

func TestSortCandidates(t *testing.T) {
	mk := func(dE float64, gain, tn int) *lac.LAC {
		return &lac.LAC{Target: tn, Fn: lac.Fn{Kind: lac.FnConst0}, Gain: gain, DeltaE: dE}
	}
	cands := []*lac.LAC{mk(0.2, 1, 1), mk(0.1, 1, 2), mk(0.1, 5, 3)}
	SortCandidates(cands)
	if cands[0].Target != 3 || cands[1].Target != 2 || cands[2].Target != 1 {
		t.Fatalf("order: %v %v %v", cands[0], cands[1], cands[2])
	}
	if selectBest(cands) != cands[0] {
		t.Fatal("selectBest disagrees with sort order")
	}
}
