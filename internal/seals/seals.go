// Package seals implements the single-selection baseline flow modelled
// on SEALS (Meng et al., DAC 2022): each round, the error increases of
// all candidate LACs are estimated with the batch simulation-based
// estimator, and only the single best LAC (minimum estimated error
// increase, ties broken by larger area gain) is applied. This is the
// state-of-the-art baseline AccALS is compared against in the paper's
// Figs. 5-6 and Table II; both flows share the LAC generator and
// estimator, so measured speedups isolate the effect of multi-LAC
// selection.
package seals

import (
	"context"
	"sort"
	"strings"
	"time"

	"accals/internal/aig"
	"accals/internal/core"
	"accals/internal/errmetric"
	"accals/internal/estimator"
	"accals/internal/lac"
	"accals/internal/mapping"
	"accals/internal/obs"
	"accals/internal/runctl"
	"accals/internal/simulate"
)

// stagnationRounds is the number of consecutive no-progress rounds
// after which the greedy single-LAC flow stops. Selection is
// deterministic, so SEALS converges faster than AccALS's
// core.StagnationRounds threshold.
const stagnationRounds = 2

// Run synthesises an approximate version of orig whose error under the
// given metric does not exceed errBound, applying one LAC per round.
func Run(orig *aig.Graph, metric errmetric.Kind, errBound float64, opt core.Options) *core.Result {
	return RunCtx(context.Background(), orig, metric, errBound, opt)
}

// RunCtx is Run with a context: cancelling ctx (or reaching
// Options.Deadline/MaxRuntime) stops the run at the next round
// boundary, returning the best circuit so far with StopReason
// Cancelled or DeadlineExceeded.
func RunCtx(ctx context.Context, orig *aig.Graph, metric errmetric.Kind, errBound float64, opt core.Options) *core.Result {
	start := time.Now()
	pats := opt.Patterns(orig)
	cmp := errmetric.NewComparator(metric, orig, pats)
	return RunWithComparatorCtx(ctx, orig, cmp, errBound, opt, start)
}

// RunWithComparator is Run with a caller-supplied comparator.
func RunWithComparator(orig *aig.Graph, cmp *errmetric.Comparator, errBound float64, opt core.Options, start time.Time) *core.Result {
	return RunWithComparatorCtx(context.Background(), orig, cmp, errBound, opt, start)
}

// RunWithComparatorCtx is RunCtx with a caller-supplied comparator.
func RunWithComparatorCtx(ctx context.Context, orig *aig.Graph, cmp *errmetric.Comparator, errBound float64, opt core.Options, start time.Time) *core.Result {
	if start.IsZero() {
		start = time.Now()
	}
	params := opt.Params
	maxRounds := params.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	ctl := runctl.NewController(ctx, opt.Deadline, opt.MaxRuntime, start)
	rec := opt.Recorder
	patCount := cmp.Patterns().NumPatterns()
	// The flow shares the parallel evaluation engine with core:
	// sharded base simulation, sharded estimation and cone-overlay
	// measurement, bit-identical at any Options.Workers setting.
	runner := simulate.NewRunner(opt.Workers)
	est := estimator.New(opt.Workers)
	rec.SetWorkers(runner.Workers())

	gNew := orig.Clone()
	e := 0.0
	round0 := 0
	if opt.Start != nil && opt.Start.Graph != nil {
		gNew = opt.Start.Graph.Clone()
		e = cmp.Error(gNew)
		round0 = opt.Start.Round
	}
	g := gNew
	eG := e
	result := &core.Result{}
	noProgress := 0
	reason := runctl.Bounded

	// Round ledger (see internal/ledger): the single-selection flow
	// emits the subset of the event vocabulary it has — one applied LAC
	// per round, no conflict graph or duel columns. Guarded by led so an
	// unledgered run never invokes the technology mapper.
	led := rec.Ledgering()
	if led {
		area, _ := mapping.AreaDelay(g)
		rec.EmitMeta(obs.RunMeta{
			Method:       "seals",
			Circuit:      orig.Name,
			Metric:       strings.ToLower(cmp.Kind().String()),
			Bound:        errBound,
			Seed:         params.Seed,
			Patterns:     patCount,
			Workers:      runner.Workers(),
			InitialAnds:  g.NumAnds(),
			InitialArea:  area,
			InitialDepth: g.Depth(),
			StartRound:   round0,
			Resumed:      opt.Start != nil && opt.Start.Graph != nil,
		})
	}

	for round := round0; ; round++ {
		if e > errBound {
			reason = runctl.Bounded
			break
		}
		g, eG = gNew, e
		if round >= maxRounds {
			reason = runctl.MaxRounds
			break
		}
		if r, stop := ctl.Stop(); stop {
			reason = r
			break
		}
		roundStart := time.Now()
		rs := core.RoundStats{Round: round, NumAnds: g.NumAnds()}
		rec.BeginRound(round)
		roundSpan := rec.StartPhase(round, obs.PhaseRound)

		simSpan := rec.StartPhase(round, obs.PhaseSimulate)
		simRes, serr := runner.RunRec(g, cmp.Patterns(), rec)
		simSpan.End()
		if serr != nil {
			roundSpan.End()
			reason = runctl.Failed
			break
		}
		rec.CountSimPatterns(patCount)

		genSpan := rec.StartPhase(round, obs.PhaseGenerate)
		cands := lac.Generate(g, simRes, opt.GenCfg)
		genSpan.End()
		rs.Candidates = len(cands)
		rec.CountCandidates(len(cands))
		if len(cands) == 0 {
			roundSpan.End()
			reason = runctl.Stagnated
			break
		}
		if opt.ExactEstimates {
			est.EstimateAllExactRec(g, simRes, cmp, cands, rec)
		} else {
			est.EstimateAllRec(g, simRes, cmp, cands, rec)
		}
		best := selectBest(cands)

		applySpan := rec.StartPhase(round, obs.PhaseApply)
		gNew = lac.Apply(g, []*lac.LAC{best})
		applySpan.End()
		// Measure on the winner's fanout cone overlaid on the base
		// simulation — bit-identical to cmp.Error(gNew) since Rebuild
		// preserves output functions.
		measureSpan := rec.StartPhase(round, obs.PhaseMeasure)
		e = cmp.ErrorFromPOs(estimator.ResimulateWith(g, simRes, best))
		measureSpan.End()
		rec.CountSimPatterns(patCount)
		runner.Release(simRes)
		// A candidate may rebuild the same function without shrinking
		// the circuit (its gain estimate was optimistic); selection is
		// deterministic, so repeated stagnation means convergence.
		if gNew.NumAnds() >= g.NumAnds() && e <= eG {
			noProgress++
			if noProgress >= stagnationRounds {
				gNew, e = g, eG
				roundSpan.End()
				reason = runctl.Stagnated
				break
			}
		} else {
			noProgress = 0
		}
		rs.AppliedLACs = 1
		rs.Error = e
		rs.EstimatedErr = eG + best.DeltaE
		rs.NoProgress = noProgress
		rs.RoundDuration = time.Since(roundStart)
		result.Rounds = append(result.Rounds, rs)
		result.LACsApplied++
		rec.CountApplied(1)
		roundSpan.End()
		rec.EndRound(round, e, gNew.NumAnds(), noProgress, 1)
		if led {
			ev := obs.RoundEvent{
				Round:      round,
				Candidates: rs.Candidates,
				BudgetLeft: errBound - eG,
				EstErr:     rs.EstimatedErr,
				Error:      e,
				NumAnds:    gNew.NumAnds(),
				Depth:      gNew.Depth(),
				NoProgress: noProgress,
				DurationUS: rs.RoundDuration.Microseconds(),
				Applied: []obs.AppliedLAC{{
					Target: best.Target, Gain: best.Gain,
					DeltaE: best.DeltaE, MeasuredErr: e,
				}},
			}
			ev.Area, _ = mapping.AreaDelay(gNew)
			rec.EmitRound(ev)
		}
		if opt.Progress != nil {
			snap := rs
			snap.Graph = gNew.Clone()
			opt.Progress(snap)
		}
	}

	result.Final = g
	result.Error = eG
	result.StopReason = reason
	result.Runtime = time.Since(start)
	if led {
		area, _ := mapping.AreaDelay(g)
		rec.EmitFinish(obs.RunFinish{
			StopReason:  reason.String(),
			Rounds:      round0 + len(result.Rounds),
			Error:       eG,
			NumAnds:     g.NumAnds(),
			Area:        area,
			Depth:       g.Depth(),
			LACsApplied: result.LACsApplied,
			RuntimeUS:   result.Runtime.Microseconds(),
		})
	}
	rec.Finish(reason.String())
	return result
}

// selectBest returns the LAC with the minimum estimated error
// increase, breaking ties by larger gain then target id.
func selectBest(cands []*lac.LAC) *lac.LAC {
	best := cands[0]
	for _, c := range cands[1:] {
		if less(c, best) {
			best = c
		}
	}
	return best
}

func less(a, b *lac.LAC) bool {
	if a.DeltaE != b.DeltaE {
		return a.DeltaE < b.DeltaE
	}
	if a.Gain != b.Gain {
		return a.Gain > b.Gain
	}
	return a.Target < b.Target
}

// SortCandidates orders LACs with the flow's comparison; exported for
// tests.
func SortCandidates(cands []*lac.LAC) {
	sort.SliceStable(cands, func(i, j int) bool { return less(cands[i], cands[j]) })
}
