// Package dot renders AND-inverter graphs in Graphviz DOT format for
// debugging and documentation. Complemented edges are drawn dashed
// with a dot arrowhead, the usual AIG convention.
package dot

import (
	"bufio"
	"fmt"
	"io"

	"accals/internal/aig"
)

// Options controls rendering.
type Options struct {
	// Highlight marks the given node ids (e.g. LAC targets) in red.
	Highlight map[int]bool
	// RankByLevel places nodes of equal logic level on one rank.
	RankByLevel bool
}

// Write renders g as a DOT digraph.
func Write(w io.Writer, g *aig.Graph, opt Options) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n  node [fontsize=10];\n", g.Name)

	for i, id := range g.PIs() {
		fmt.Fprintf(bw, "  n%d [shape=triangle, label=%q];\n", id, g.PIName(i))
	}
	for id := 0; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		attrs := "shape=circle, label=\"∧\""
		if opt.Highlight[id] {
			attrs += ", color=red, penwidth=2"
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", id, attrs)
		n := g.NodeAt(id)
		writeEdge(bw, n.Fanin0, id)
		writeEdge(bw, n.Fanin1, id)
	}
	for i, l := range g.POs() {
		fmt.Fprintf(bw, "  po%d [shape=invtriangle, label=%q];\n", i, g.POName(i))
		style := ""
		if l.IsCompl() {
			style = " [style=dashed, arrowhead=odot]"
		}
		fmt.Fprintf(bw, "  n%d -> po%d%s;\n", l.Node(), i, style)
	}

	if opt.RankByLevel {
		lv := g.Levels()
		byLevel := map[int][]int{}
		for id := 0; id < g.NumNodes(); id++ {
			if g.IsAnd(id) || g.IsPI(id) {
				byLevel[lv[id]] = append(byLevel[lv[id]], id)
			}
		}
		for _, ids := range byLevel {
			fmt.Fprint(bw, "  { rank=same;")
			for _, id := range ids {
				fmt.Fprintf(bw, " n%d;", id)
			}
			fmt.Fprintln(bw, " }")
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func writeEdge(bw *bufio.Writer, from aig.Lit, to int) {
	style := ""
	if from.IsCompl() {
		style = " [style=dashed, arrowhead=odot]"
	}
	fmt.Fprintf(bw, "  n%d -> n%d%s;\n", from.Node(), to, style)
}
