package dot

import (
	"bytes"
	"strings"
	"testing"

	"accals/internal/aig"
)

func TestWrite(t *testing.T) {
	g := aig.New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b.Not())
	g.AddPO(x.Not(), "y")

	var buf bytes.Buffer
	if err := Write(&buf, g, Options{Highlight: map[int]bool{x.Node(): true}, RankByLevel: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"t\"",
		"shape=triangle",
		"shape=invtriangle",
		"style=dashed, arrowhead=odot", // complemented edges
		"color=red",                    // highlight
		"rank=same",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	if strings.Count(out, "->") != 3 { // 2 fanins + 1 PO edge
		t.Errorf("edge count wrong:\n%s", out)
	}
}
