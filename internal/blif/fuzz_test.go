package blif

import (
	"bytes"
	"strings"
	"testing"

	"accals/internal/circuits"
)

// FuzzBLIFRead asserts that Read never panics or hangs on arbitrary
// bytes: it either returns a structurally valid graph or an error.
// The seed corpus is the writer's own output on a spread of built-in
// benchmarks plus hand-written edge cases.
func FuzzBLIFRead(f *testing.F) {
	for _, name := range []string{"rca32", "mtp8", "alu4", "cla32"} {
		g, err := circuits.ByName(name)
		if err != nil {
			f.Fatalf("benchmark %s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			f.Fatalf("write %s: %v", name, err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"))
	f.Add([]byte(".model m\n.outputs y\n.names y\n1\n.end\n"))
	f.Add([]byte(".names a \\\nb y\n1- 1\n0- 1\n"))
	f.Add([]byte(".inputs a\n.outputs y\n.names a y\n"))
	f.Add([]byte(".latch a b\n"))
	f.Add([]byte("# just a comment\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		if err := g.Check(); err != nil {
			t.Fatalf("accepted graph fails Check: %v", err)
		}
		// An accepted circuit must survive a write/read round trip.
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		if _, err := Read(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
		}
	})
}
