// Package blif reads and writes combinational circuits in the
// Berkeley Logic Interchange Format (BLIF), the format the paper's
// benchmark suites are distributed in. The reader accepts multi-cube
// single-output .names covers (with don't-cares) in any declaration
// order and builds a structurally hashed AIG; the writer emits one
// two-input cover per AND node, folding complement edges into the
// cube literals.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"accals/internal/aig"
	"accals/internal/runctl"
)

// errf builds a parse error wrapping runctl.ErrMalformedInput, so
// callers can classify rejects with errors.Is.
func errf(format string, args ...any) error {
	return fmt.Errorf("blif: %s: %w", fmt.Sprintf(format, args...), runctl.ErrMalformedInput)
}

// cover is one parsed .names block.
type cover struct {
	inputs []string
	output string
	cubes  []string // input parts of on-set/off-set rows
	outVal byte     // '1' for on-set rows, '0' for off-set rows
	line   int
}

// Read parses a BLIF model into an AIG.
func Read(r io.Reader) (*aig.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	model := "blif"
	var inputs, outputs []string
	var covers []*cover
	var cur *cover
	lineNo := 0

	flushCover := func() {
		if cur != nil {
			covers = append(covers, cur)
			cur = nil
		}
	}

	var pending string
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Handle line continuations.
		if strings.HasSuffix(line, "\\") {
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		if pending != "" {
			line = pending + line
			pending = ""
		}

		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				model = fields[1]
			}
		case ".inputs":
			flushCover()
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			flushCover()
			outputs = append(outputs, fields[1:]...)
		case ".names":
			flushCover()
			if len(fields) < 2 {
				return nil, errf("line %d: .names needs at least an output", lineNo)
			}
			cur = &cover{
				inputs: fields[1 : len(fields)-1],
				output: fields[len(fields)-1],
				line:   lineNo,
			}
		case ".end":
			flushCover()
		case ".latch", ".gate", ".mlatch", ".subckt":
			return nil, errf("line %d: unsupported construct %s (combinational .names only)", lineNo, fields[0])
		default:
			if cur == nil {
				return nil, errf("line %d: cube outside .names", lineNo)
			}
			// Cube row: "<in-part> <out-val>" or just "<out-val>" for
			// constant functions.
			var inPart string
			var outVal byte
			if len(fields) == 1 {
				if len(cur.inputs) != 0 {
					return nil, errf("line %d: cube arity mismatch", lineNo)
				}
				outVal = fields[0][0]
			} else if len(fields) == 2 {
				inPart = fields[0]
				outVal = fields[1][0]
			} else {
				return nil, errf("line %d: malformed cube", lineNo)
			}
			if len(inPart) != len(cur.inputs) {
				return nil, errf("line %d: cube width %d does not match %d inputs", lineNo, len(inPart), len(cur.inputs))
			}
			if outVal != '0' && outVal != '1' {
				return nil, errf("line %d: output value %q", lineNo, outVal)
			}
			if len(cur.cubes) > 0 && cur.outVal != outVal {
				return nil, errf("line %d: mixed on-set and off-set rows", lineNo)
			}
			cur.outVal = outVal
			cur.cubes = append(cur.cubes, inPart)
		}
	}
	flushCover()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pending != "" {
		return nil, errf("dangling line continuation at end of input")
	}

	return build(model, inputs, outputs, covers)
}

// build elaborates parsed covers into an AIG, processing them in
// dependency order.
func build(model string, inputs, outputs []string, covers []*cover) (*aig.Graph, error) {
	g := aig.New(model)
	signal := make(map[string]aig.Lit, len(inputs)+len(covers))
	for _, in := range inputs {
		if _, dup := signal[in]; dup {
			return nil, errf("duplicate input %q", in)
		}
		signal[in] = g.AddPI(in)
	}

	byOutput := make(map[string]*cover, len(covers))
	for _, c := range covers {
		if _, dup := byOutput[c.output]; dup {
			return nil, errf("line %d: signal %q defined twice", c.line, c.output)
		}
		if _, isPI := signal[c.output]; isPI {
			return nil, errf("line %d: signal %q redefines an input", c.line, c.output)
		}
		byOutput[c.output] = c
	}

	// Iterative DFS elaboration in dependency order.
	var elaborate func(name string, stack map[string]bool) (aig.Lit, error)
	elaborate = func(name string, stack map[string]bool) (aig.Lit, error) {
		if l, ok := signal[name]; ok {
			return l, nil
		}
		c, ok := byOutput[name]
		if !ok {
			return 0, errf("signal %q has no driver", name)
		}
		if stack[name] {
			return 0, errf("combinational cycle through %q", name)
		}
		stack[name] = true
		ins := make([]aig.Lit, len(c.inputs))
		for i, in := range c.inputs {
			l, err := elaborate(in, stack)
			if err != nil {
				return 0, err
			}
			ins[i] = l
		}
		delete(stack, name)

		// Sum of products over the cubes.
		sum := aig.ConstFalse
		for _, cube := range c.cubes {
			term := aig.ConstTrue
			for i := 0; i < len(cube); i++ {
				switch cube[i] {
				case '1':
					term = g.And(term, ins[i])
				case '0':
					term = g.And(term, ins[i].Not())
				case '-':
				default:
					return 0, errf("line %d: cube literal %q", c.line, cube[i])
				}
			}
			sum = g.Or(sum, term)
		}
		if len(c.cubes) == 0 {
			sum = aig.ConstFalse // empty cover is constant 0
		}
		if c.outVal == '0' {
			sum = sum.Not() // off-set cover
		}
		signal[name] = sum
		return sum, nil
	}

	// First pass: elaborate covers in declaration order whenever their
	// inputs are already defined. Write emits covers in node-id order,
	// so on writer-produced BLIF this recreates nodes in their original
	// sequence and the round-trip is id-stable — which is what lets a
	// checkpointed run resume on the exact same trajectory. Covers with
	// forward references fall through to the output-driven elaboration
	// below, which preserves the any-declaration-order semantics.
	for _, c := range covers {
		if _, done := signal[c.output]; done {
			continue
		}
		ready := true
		for _, in := range c.inputs {
			if _, ok := signal[in]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		if _, err := elaborate(c.output, map[string]bool{}); err != nil {
			return nil, err
		}
	}

	for _, out := range outputs {
		l, err := elaborate(out, map[string]bool{})
		if err != nil {
			return nil, err
		}
		g.AddPO(l, out)
	}
	return g.Sweep(), nil
}

// Write emits g as a BLIF model.
func Write(w io.Writer, g *aig.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", sanitize(g.Name))

	piName := make(map[int]string, g.NumPIs())
	fmt.Fprint(bw, ".inputs")
	for i, id := range g.PIs() {
		n := g.PIName(i)
		if n == "" {
			n = fmt.Sprintf("pi%d", i)
		}
		piName[id] = n
		fmt.Fprintf(bw, " %s", n)
	}
	fmt.Fprintln(bw)

	fmt.Fprint(bw, ".outputs")
	poNames := make([]string, g.NumPOs())
	for i := range g.POs() {
		n := g.POName(i)
		if n == "" {
			n = fmt.Sprintf("po%d", i)
		}
		poNames[i] = n
		fmt.Fprintf(bw, " %s", n)
	}
	fmt.Fprintln(bw)

	name := func(id int) string {
		if n, ok := piName[id]; ok {
			return n
		}
		return fmt.Sprintf("n%d", id)
	}

	// One 2-input cover per AND node, complement edges as 0-literals.
	for id := 0; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		n := g.NodeAt(id)
		c0, c1 := byte('1'), byte('1')
		if n.Fanin0.IsCompl() {
			c0 = '0'
		}
		if n.Fanin1.IsCompl() {
			c1 = '0'
		}
		fmt.Fprintf(bw, ".names %s %s %s\n%c%c 1\n",
			name(n.Fanin0.Node()), name(n.Fanin1.Node()), name(id), c0, c1)
	}

	// Output drivers.
	for i, l := range g.POs() {
		switch {
		case l == aig.ConstFalse:
			fmt.Fprintf(bw, ".names %s\n", poNames[i]) // empty cover = 0
		case l == aig.ConstTrue:
			fmt.Fprintf(bw, ".names %s\n1\n", poNames[i])
		case l.IsCompl():
			fmt.Fprintf(bw, ".names %s %s\n0 1\n", name(l.Node()), poNames[i])
		default:
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", name(l.Node()), poNames[i])
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// sanitize strips whitespace from model names.
func sanitize(s string) string {
	if s == "" {
		return "circuit"
	}
	return strings.Join(strings.Fields(s), "_")
}

// ReadString parses a BLIF model from a string (test convenience).
func ReadString(s string) (*aig.Graph, error) {
	return Read(strings.NewReader(s))
}

// SortedSignalNames returns the PI names of g in sorted order (used by
// tools that need a stable interface listing).
func SortedSignalNames(g *aig.Graph) []string {
	out := make([]string, g.NumPIs())
	for i := range out {
		out[i] = g.PIName(i)
	}
	sort.Strings(out)
	return out
}
