package blif

import (
	"bytes"
	"strings"
	"testing"

	"accals/internal/aig"
	"accals/internal/circuits"
	"accals/internal/simulate"
)

func TestReadSimpleModel(t *testing.T) {
	src := `
# a full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`
	g, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "fa" || g.NumPIs() != 3 || g.NumPOs() != 2 {
		t.Fatalf("interface: %s %d/%d", g.Name, g.NumPIs(), g.NumPOs())
	}
	p := simulate.Exhaustive(3)
	r := simulate.MustRun(g, p)
	pos := r.POValues(g)
	for pat := 0; pat < 8; pat++ {
		n := pat&1 + pat>>1&1 + pat>>2&1
		if got := simulate.Bit(pos[0], pat); got != (n%2 == 1) {
			t.Errorf("sum(%d) = %v", pat, got)
		}
		if got := simulate.Bit(pos[1], pat); got != (n >= 2) {
			t.Errorf("cout(%d) = %v", pat, got)
		}
	}
}

func TestReadOutOfOrderAndOffSet(t *testing.T) {
	src := `
.model t
.inputs a b
.outputs y
.names mid y
0 1
.names a b mid
11 0
.end
`
	// y = !mid, mid = !(a&b) -> y = a&b.
	g, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	p := simulate.Exhaustive(2)
	pos := simulate.MustRun(g, p).POValues(g)
	for pat := 0; pat < 4; pat++ {
		want := pat == 3
		if got := simulate.Bit(pos[0], pat); got != want {
			t.Errorf("y(%d) = %v, want %v", pat, got, want)
		}
	}
}

func TestReadConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs zero one
.names zero
.names one
1
.end
`
	g, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.PO(0) != aig.ConstFalse || g.PO(1) != aig.ConstTrue {
		t.Fatalf("constants wrong: %v %v", g.PO(0), g.PO(1))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"undriven":  ".model m\n.inputs a\n.outputs y\n.end\n",
		"cycle":     ".model m\n.inputs a\n.outputs y\n.names y x\n1 1\n.names x y\n1 1\n.end\n",
		"latch":     ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n",
		"badCube":   ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
		"arity":     ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n",
		"redefine":  ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n",
		"mixedSets": ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n",
	}
	for name, src := range cases {
		if _, err := ReadString(src); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestRoundTripPreservesFunction(t *testing.T) {
	for _, name := range []string{"rca32", "mtp8", "alu4", "c1908", "alu2"} {
		g, err := circuits.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", name, err)
		}
		if g2.NumPIs() != g.NumPIs() || g2.NumPOs() != g.NumPOs() {
			t.Fatalf("%s: interface changed", name)
		}
		p := simulate.NewPatterns(g.NumPIs(), 512, 99)
		v1 := simulate.MustRun(g, p).POValues(g)
		v2 := simulate.MustRun(g2, p).POValues(g2)
		for j := range v1 {
			for w := range v1[j] {
				if v1[j][w] != v2[j][w] {
					t.Fatalf("%s: PO %d differs after round trip", name, j)
				}
			}
		}
	}
}

// TestRoundTripIsIDStable pins the checkpoint-critical property: on
// writer-produced BLIF (covers in node-id order) the reader recreates
// nodes in the same sequence, so Write∘Read is a fixed point and a
// resumed run replays the interrupted trajectory exactly. Compare the
// second-generation BLIF text against the first: byte equality means
// ids, strash order and fanin normalisation all survived.
func TestRoundTripIsIDStable(t *testing.T) {
	for _, name := range []string{"rca32", "mtp8", "alu4", "c1908"} {
		g, err := circuits.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var first bytes.Buffer
		if err := Write(&first, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadString(first.String())
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := Write(&second, g2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%s: BLIF round trip renumbered the graph", name)
		}
	}
}

func TestWriteNamesPreserved(t *testing.T) {
	g := aig.New("named")
	a := g.AddPI("alpha")
	b := g.AddPI("beta")
	g.AddPO(g.And(a, b), "gamma")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{".model named", "alpha", "beta", "gamma"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	g2, err := ReadString(out)
	if err != nil {
		t.Fatal(err)
	}
	if g2.PIName(0) != "alpha" || g2.POName(0) != "gamma" {
		t.Error("names lost in round trip")
	}
}

func TestReadLineContinuation(t *testing.T) {
	src := ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
	g, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPIs() != 2 {
		t.Fatalf("continuation lost an input: %d PIs", g.NumPIs())
	}
}
