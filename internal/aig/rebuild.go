package aig

// ReplaceFunc constructs the replacement literal for a substituted
// node. It receives the graph being built and a copyOf function that
// maps an old node id to its literal in the new graph. Implementations
// may only request nodes that precede the substituted node in the old
// graph's topological order; this is what keeps every simultaneous
// application of approximate changes acyclic.
type ReplaceFunc func(g *Graph, copyOf func(oldID int) Lit) Lit

// Rebuild copies the graph while substituting the nodes listed in repl.
// For every old node id present in repl, the node's logic is replaced
// by the literal produced by its ReplaceFunc; all other nodes are
// copied verbatim (subject to structural hashing, which may merge
// duplicates). Dead logic is removed. The PI/PO interface is preserved
// exactly: same count, order and names.
func (g *Graph) Rebuild(repl map[int]ReplaceFunc) *Graph {
	ng, _ := g.RebuildMapped(repl)
	return ng
}

// RebuildMapped is Rebuild returning, alongside the new graph, the
// old→new literal map: m[oldID] is the literal in the new (swept)
// graph that computes old node oldID's post-substitution function, or
// LitNone when the node's logic was swept away as dead. The map is
// what lets cross-round caches survive Apply: node ids are renumbered
// by the sweep, but m composes the rebuild's copy map with the sweep's
// compaction into one translation.
func (g *Graph) RebuildMapped(repl map[int]ReplaceFunc) (*Graph, []Lit) {
	ng := New(g.Name)
	copyLit := make([]Lit, len(g.nodes))
	copyOf := func(oldID int) Lit { return copyLit[oldID] }
	for id, n := range g.nodes {
		switch n.Kind {
		case KindConst:
			copyLit[id] = ConstFalse
		case KindPI:
			copyLit[id] = ng.AddPI(g.piNames[len(ng.pis)])
			if rf, ok := repl[id]; ok {
				copyLit[id] = rf(ng, copyOf)
			}
		case KindAnd:
			if rf, ok := repl[id]; ok {
				copyLit[id] = rf(ng, copyOf)
				continue
			}
			f0 := copyLit[n.Fanin0.Node()].NotIf(n.Fanin0.IsCompl())
			f1 := copyLit[n.Fanin1.Node()].NotIf(n.Fanin1.IsCompl())
			copyLit[id] = ng.And(f0, f1)
		}
	}
	for i, l := range g.pos {
		ng.AddPO(copyLit[l.Node()].NotIf(l.IsCompl()), g.poNames[i])
	}
	swept, sweepLit := ng.sweepMapped()
	m := make([]Lit, len(g.nodes))
	for id, l := range copyLit {
		sl := sweepLit[l.Node()]
		if sl.IsNone() {
			m[id] = LitNone
			continue
		}
		m[id] = sl.NotIf(l.IsCompl())
	}
	return swept, m
}

// Clone returns a deep copy of the graph with dead logic removed.
func (g *Graph) Clone() *Graph {
	return g.Rebuild(nil)
}

// Sweep returns a compacted copy of the graph containing only the
// constant, all primary inputs (kept even when unused, so the
// simulation interface is stable), and the AND nodes reachable from
// the primary outputs.
func (g *Graph) Sweep() *Graph {
	ng, _ := g.sweepMapped()
	return ng
}

// sweepMapped is Sweep returning the old→new literal map of the
// compaction: LitNone for dropped (dead) nodes, an uncomplemented
// literal for every surviving one.
func (g *Graph) sweepMapped() (*Graph, []Lit) {
	live := g.Reachable()
	ng := New(g.Name)
	copyLit := make([]Lit, len(g.nodes))
	for i := range copyLit {
		copyLit[i] = LitNone
	}
	for id, n := range g.nodes {
		switch n.Kind {
		case KindConst:
			copyLit[id] = ConstFalse
		case KindPI:
			copyLit[id] = ng.AddPI(g.piNames[len(ng.pis)])
		case KindAnd:
			if !live.Has(id) {
				continue
			}
			f0 := copyLit[n.Fanin0.Node()].NotIf(n.Fanin0.IsCompl())
			f1 := copyLit[n.Fanin1.Node()].NotIf(n.Fanin1.IsCompl())
			copyLit[id] = ng.And(f0, f1)
		}
	}
	for i, l := range g.pos {
		ng.AddPO(copyLit[l.Node()].NotIf(l.IsCompl()), g.poNames[i])
	}
	return ng, copyLit
}
