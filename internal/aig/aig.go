// Package aig implements a structurally hashed AND-inverter graph
// (AIG), the circuit representation used throughout this repository.
//
// An AIG represents combinational logic with two-input AND nodes and
// complemented edges. Node 0 is the constant-false node; primary
// inputs and AND nodes follow. Construction order is a topological
// order by invariant: the fanins of every AND node have smaller node
// ids than the node itself. All algorithms in this module rely on that
// invariant, including the multi-LAC rebuild (see Rebuild), which is
// what guarantees that simultaneously applied approximate changes can
// never create a combinational cycle.
package aig

import "fmt"

// Lit is an edge literal: a node id shifted left by one, with the low
// bit indicating complementation.
type Lit uint32

// Constant literals (node 0).
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// LitNone is the sentinel for "no literal": old→new node maps produced
// by RebuildMapped use it for nodes with no image in the new graph
// (logic swept away as dead). It is not a valid edge literal.
const LitNone Lit = ^Lit(0)

// IsNone reports whether the literal is the LitNone sentinel.
func (l Lit) IsNone() bool { return l == LitNone }

// MakeLit builds the literal for node id with the given complement flag.
func MakeLit(node int, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node id the literal points to.
func (l Lit) Node() int { return int(l >> 1) }

// IsCompl reports whether the literal is complemented.
func (l Lit) IsCompl() bool { return l&1 != 0 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// String renders the literal as e.g. "n7" or "!n7".
func (l Lit) String() string {
	if l.IsCompl() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// Kind distinguishes the three node types of an AIG.
type Kind uint8

// Node kinds.
const (
	KindConst Kind = iota // node 0 only
	KindPI                // primary input
	KindAnd               // two-input AND
)

// Node is a single AIG node. For KindAnd, Fanin0 and Fanin1 are the
// input literals (Fanin0 <= Fanin1 after normalisation); they are
// unused for the other kinds.
type Node struct {
	Kind   Kind
	Fanin0 Lit
	Fanin1 Lit
}

// Graph is a combinational AND-inverter graph. The zero value is not
// usable; create graphs with New.
type Graph struct {
	// Name identifies the circuit (benchmark name).
	Name string

	nodes   []Node
	pis     []int // node ids of primary inputs, in declaration order
	pos     []Lit // primary output literals, in declaration order
	piNames []string
	poNames []string
	strash  map[[2]Lit]int
}

// New returns an empty graph containing only the constant node.
func New(name string) *Graph {
	g := &Graph{
		Name:   name,
		nodes:  make([]Node, 1, 256),
		strash: make(map[[2]Lit]int),
	}
	g.nodes[0] = Node{Kind: KindConst}
	return g
}

// AddPI appends a primary input and returns its (positive) literal.
func (g *Graph) AddPI(name string) Lit {
	id := len(g.nodes)
	g.nodes = append(g.nodes, Node{Kind: KindPI})
	g.pis = append(g.pis, id)
	g.piNames = append(g.piNames, name)
	return MakeLit(id, false)
}

// AddPO appends a primary output driven by literal l.
func (g *Graph) AddPO(l Lit, name string) {
	if l.Node() >= len(g.nodes) {
		panic(fmt.Sprintf("aig: PO literal %v out of range", l))
	}
	g.pos = append(g.pos, l)
	g.poNames = append(g.poNames, name)
}

// And returns a literal for the conjunction of a and b, applying
// constant propagation, trivial simplification, and structural hashing.
func (g *Graph) And(a, b Lit) Lit {
	// Normalise operand order so the hash key is canonical.
	if a > b {
		a, b = b, a
	}
	switch {
	case a == ConstFalse:
		return ConstFalse
	case a == ConstTrue:
		return b
	case a == b:
		return a
	case a == b.Not():
		return ConstFalse
	}
	key := [2]Lit{a, b}
	if id, ok := g.strash[key]; ok {
		return MakeLit(id, false)
	}
	id := len(g.nodes)
	g.nodes = append(g.nodes, Node{Kind: KindAnd, Fanin0: a, Fanin1: b})
	g.strash[key] = id
	return MakeLit(id, false)
}

// ProbeAnd returns the literal And(a, b) would evaluate to if it can
// be determined without creating a node: a constant-folded or trivial
// result, or an existing structurally hashed node. ok is false when
// the conjunction would require a new node.
func (g *Graph) ProbeAnd(a, b Lit) (Lit, bool) {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == ConstFalse:
		return ConstFalse, true
	case a == ConstTrue:
		return b, true
	case a == b:
		return a, true
	case a == b.Not():
		return ConstFalse, true
	}
	if id, ok := g.strash[[2]Lit{a, b}]; ok {
		return MakeLit(id, false), true
	}
	return 0, false
}

// Or returns a literal for the disjunction of a and b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal for the exclusive-or of a and b.
func (g *Graph) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns a literal for the exclusive-nor of a and b.
func (g *Graph) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns a literal for "if s then t else e".
func (g *Graph) Mux(s, t, e Lit) Lit {
	return g.Or(g.And(s, t), g.And(s.Not(), e))
}

// Maj3 returns the majority of three literals (full-adder carry).
func (g *Graph) Maj3(a, b, c Lit) Lit {
	return g.Or(g.And(a, b), g.Or(g.And(a, c), g.And(b, c)))
}

// NumNodes returns the total node count including the constant and PIs.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes (the usual "AIG size").
func (g *Graph) NumAnds() int { return len(g.nodes) - 1 - len(g.pis) }

// NumPIs returns the number of primary inputs.
func (g *Graph) NumPIs() int { return len(g.pis) }

// NumPOs returns the number of primary outputs.
func (g *Graph) NumPOs() int { return len(g.pos) }

// PI returns the node id of the i-th primary input.
func (g *Graph) PI(i int) int { return g.pis[i] }

// PIs returns the node ids of all primary inputs in declaration order.
func (g *Graph) PIs() []int { return g.pis }

// PO returns the literal driving the i-th primary output.
func (g *Graph) PO(i int) Lit { return g.pos[i] }

// POs returns the literals of all primary outputs in declaration order.
func (g *Graph) POs() []Lit { return g.pos }

// SetPO redirects the i-th primary output to literal l.
func (g *Graph) SetPO(i int, l Lit) { g.pos[i] = l }

// PIName returns the name of the i-th primary input.
func (g *Graph) PIName(i int) string { return g.piNames[i] }

// POName returns the name of the i-th primary output.
func (g *Graph) POName(i int) string { return g.poNames[i] }

// NodeAt returns the node with the given id.
func (g *Graph) NodeAt(id int) Node { return g.nodes[id] }

// IsAnd reports whether node id is an AND node.
func (g *Graph) IsAnd(id int) bool { return g.nodes[id].Kind == KindAnd }

// IsPI reports whether node id is a primary input.
func (g *Graph) IsPI(id int) bool { return g.nodes[id].Kind == KindPI }

// Check verifies the structural invariants of the graph: fanins of
// every AND node precede the node, and all PO literals are in range.
// It returns a descriptive error for the first violation found.
func (g *Graph) Check() error {
	for id, n := range g.nodes {
		switch n.Kind {
		case KindConst:
			if id != 0 {
				return fmt.Errorf("aig: constant node at id %d", id)
			}
		case KindAnd:
			if n.Fanin0.Node() >= id || n.Fanin1.Node() >= id {
				return fmt.Errorf("aig: node %d has non-topological fanin (%v, %v)", id, n.Fanin0, n.Fanin1)
			}
			if n.Fanin0 > n.Fanin1 {
				return fmt.Errorf("aig: node %d has non-normalised fanins (%v, %v)", id, n.Fanin0, n.Fanin1)
			}
		}
	}
	for i, l := range g.pos {
		if l.Node() >= len(g.nodes) {
			return fmt.Errorf("aig: PO %d literal %v out of range", i, l)
		}
	}
	return nil
}
