package aig

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary graph codec: a compact, versioned encoding of a Graph used by
// the distributed evaluation protocol (internal/dispatch) to ship the
// reference and per-epoch circuits to evaluator processes. The format
// preserves node ids exactly — the decoder appends nodes positionally
// instead of re-running And()'s simplifications — because LAC targets
// and substitute nodes are communicated as node ids and must mean the
// same node on both sides. Decode∘Encode is the identity on the
// observable graph (ids, kinds, fanins, PI/PO order and names), which
// the roundtrip tests pin via byte-equal re-encoding and BLIF output.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "AGB" + 1 version byte (currently 1)
//	name length, name bytes
//	node count N (including the constant node 0)
//	for each id in [1, N): kind byte (1 = PI, 2 = AND);
//	    for AND: fanin0 literal, fanin1 literal
//	for each PI in declaration order: name length, name bytes
//	PO count; for each PO: literal, name length, name bytes
//
// Primary inputs are declared in ascending id order by construction
// (AddPI appends), so the PI list is recovered from the node kinds.

// codecVersion is the current binary codec version.
const codecVersion = 1

// ErrBadBinary is wrapped by every DecodeBinary error.
var ErrBadBinary = errors.New("aig: bad binary graph encoding")

// AppendBinary appends the binary encoding of g to buf and returns the
// extended slice.
func (g *Graph) AppendBinary(buf []byte) []byte {
	buf = append(buf, 'A', 'G', 'B', codecVersion)
	buf = appendString(buf, g.Name)
	buf = binary.AppendUvarint(buf, uint64(len(g.nodes)))
	for id := 1; id < len(g.nodes); id++ {
		n := g.nodes[id]
		buf = append(buf, byte(n.Kind))
		if n.Kind == KindAnd {
			buf = binary.AppendUvarint(buf, uint64(n.Fanin0))
			buf = binary.AppendUvarint(buf, uint64(n.Fanin1))
		}
	}
	for _, name := range g.piNames {
		buf = appendString(buf, name)
	}
	buf = binary.AppendUvarint(buf, uint64(len(g.pos)))
	for i, l := range g.pos {
		buf = binary.AppendUvarint(buf, uint64(l))
		buf = appendString(buf, g.poNames[i])
	}
	return buf
}

// DecodeBinary decodes a graph produced by AppendBinary, validating
// the structural invariants (Check) before returning it. The input
// must contain exactly one encoded graph; trailing bytes are an error
// so framing bugs surface here instead of as truncated circuits.
func DecodeBinary(data []byte) (*Graph, error) {
	d := decoder{buf: data}
	if len(data) < 4 || data[0] != 'A' || data[1] != 'G' || data[2] != 'B' {
		return nil, fmt.Errorf("%w: missing magic", ErrBadBinary)
	}
	if data[3] != codecVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadBinary, data[3], codecVersion)
	}
	d.buf = data[4:]

	name := d.string()
	numNodes := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	if numNodes < 1 || numNodes > 1<<28 {
		return nil, fmt.Errorf("%w: node count %d out of range", ErrBadBinary, numNodes)
	}
	g := &Graph{
		Name:   name,
		nodes:  make([]Node, 1, numNodes),
		strash: make(map[[2]Lit]int, numNodes),
	}
	g.nodes[0] = Node{Kind: KindConst}
	for id := 1; id < numNodes; id++ {
		kind := Kind(d.byte())
		switch kind {
		case KindPI:
			g.nodes = append(g.nodes, Node{Kind: KindPI})
			g.pis = append(g.pis, id)
		case KindAnd:
			f0 := Lit(d.uvarint())
			f1 := Lit(d.uvarint())
			g.nodes = append(g.nodes, Node{Kind: KindAnd, Fanin0: f0, Fanin1: f1})
			key := [2]Lit{f0, f1}
			// First id wins, matching And()'s insert-if-absent: a
			// rebuilt graph could in principle carry structural twins.
			if _, ok := g.strash[key]; !ok {
				g.strash[key] = id
			}
		default:
			if d.err == nil {
				return nil, fmt.Errorf("%w: node %d has kind %d", ErrBadBinary, id, kind)
			}
			return nil, d.err
		}
	}
	g.piNames = make([]string, 0, len(g.pis))
	for range g.pis {
		g.piNames = append(g.piNames, d.string())
	}
	numPOs := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	if numPOs < 0 || numPOs > 1<<24 {
		return nil, fmt.Errorf("%w: PO count %d out of range", ErrBadBinary, numPOs)
	}
	for i := 0; i < numPOs; i++ {
		l := Lit(d.uvarint())
		g.pos = append(g.pos, l)
		g.poNames = append(g.poNames, d.string())
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBinary, len(d.buf))
	}
	if err := g.Check(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBinary, err)
	}
	return g, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder consumes the encoding front to back, latching the first
// error so call sites stay linear.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated", ErrBadBinary)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) == 0 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}
