package aig

import "accals/internal/bitset"

// Delta relates a graph to its successor produced by RebuildMapped
// (one Apply of a LAC set): which old nodes survive verbatim, which
// were disturbed, and which new nodes are fresh. It is the foundation
// of the incremental round engine's dirty-cone analysis — consumers
// combine its classification with TFO/ball traversals to decide which
// cached per-node results are still valid in the new graph.
//
// An old node is *pure* when it has an uncomplemented image in the new
// graph, its kind is unchanged, the images of pure nodes appear in the
// same relative order as their preimages, and it was not an explicit
// substitution target. Purity is exactly the property caches need:
// a pure node's new copy computes the same structure over the images
// of its old fanins, and the strictly monotone image sequence means id
// comparisons and id-sorted orders among pure nodes are preserved.
// Everything else — swept dead logic, replaced targets, structural-
// hash merges, complemented images — lands in BadOld.
type Delta struct {
	// Old and New are the graphs on either side of the rebuild.
	Old, New *Graph
	// M maps old node ids to new literals (RebuildMapped's map).
	M []Lit
	// Rev maps new node ids to their pure old preimage, -1 when none.
	Rev []int
	// PureOld holds the old ids classified pure.
	PureOld *bitset.Set
	// BadOld holds the old ids (PIs and ANDs) that are not pure.
	BadOld *bitset.Set
	// FreshNew lists the new AND ids with no pure preimage, ascending.
	FreshNew []int
}

// NewDelta classifies the rebuild old → (new, m) produced by
// RebuildMapped. replaced lists the substitution targets of the
// rebuild; they are forced impure even when their replacement literal
// happens to keep the monotone-image shape (a replacement root is a
// different function, never a verbatim copy).
func NewDelta(old, next *Graph, m []Lit, replaced []int) *Delta {
	d := &Delta{
		Old:     old,
		New:     next,
		M:       m,
		Rev:     make([]int, next.NumNodes()),
		PureOld: bitset.New(old.NumNodes()),
		BadOld:  bitset.New(old.NumNodes()),
	}
	for i := range d.Rev {
		d.Rev[i] = -1
	}
	repl := make(map[int]bool, len(replaced))
	for _, t := range replaced {
		repl[t] = true
	}
	// One forward scan: an old node is pure iff its image is an
	// uncomplemented non-constant literal of the same kind whose id
	// strictly exceeds every earlier pure image. Any merge or
	// replacement breaks monotonicity or one of the shape checks
	// (replacement roots that are freshly built nodes would pass them,
	// hence the explicit repl exclusion).
	lastNew := 0
	for x := 1; x < old.NumNodes(); x++ {
		l := m[x]
		if repl[x] || l.IsNone() || l.IsCompl() {
			d.BadOld.Add(x)
			continue
		}
		y := l.Node()
		if y == 0 || y <= lastNew || next.NodeAt(y).Kind != old.NodeAt(x).Kind {
			d.BadOld.Add(x)
			continue
		}
		d.PureOld.Add(x)
		d.Rev[y] = x
		lastNew = y
	}
	for y := 1; y < next.NumNodes(); y++ {
		if d.Rev[y] < 0 && next.IsAnd(y) {
			d.FreshNew = append(d.FreshNew, y)
		}
	}
	return d
}

// Pure reports whether old node x survived the rebuild as a verbatim,
// order-preserving copy.
func (d *Delta) Pure(x int) bool { return d.PureOld.Has(x) }

// FreshSet returns FreshNew as a bit set over new node ids.
func (d *Delta) FreshSet() *bitset.Set {
	s := bitset.New(d.New.NumNodes())
	for _, y := range d.FreshNew {
		s.Add(y)
	}
	return s
}
