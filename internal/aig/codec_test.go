package aig_test

import (
	"bytes"
	"errors"
	"testing"

	"accals/internal/aig"
	"accals/internal/blif"
	"accals/internal/circuits"
	"accals/internal/lac"
	"accals/internal/simulate"
)

// TestCodecRoundTrip checks that DecodeBinary∘AppendBinary preserves
// the observable graph exactly: node ids, kinds, fanins, PI/PO lists
// and names — pinned three ways (field comparison, byte-equal
// re-encoding, byte-equal BLIF output).
func TestCodecRoundTrip(t *testing.T) {
	graphs := []*aig.Graph{
		circuits.RCA(4),
		circuits.CLA(6),
		circuits.ArrayMult(4),
	}
	// Include a post-LAC rewritten graph: the dispatch protocol ships
	// these every epoch, and Rebuild's id compaction is the case where
	// positional decoding (rather than re-running And()) matters.
	g := circuits.ArrayMult(3)
	p := simulate.Exhaustive(g.NumPIs())
	res := simulate.MustRun(g, p)
	cands := lac.Generate(g, res, lac.Config{EnableResub: true})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	graphs = append(graphs, lac.Apply(g, cands[:1]))

	for _, want := range graphs {
		enc := want.AppendBinary(nil)
		got, err := aig.DecodeBinary(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Name, err)
		}
		if err := got.Check(); err != nil {
			t.Fatalf("%s: decoded graph invalid: %v", want.Name, err)
		}
		if got.Name != want.Name || got.NumNodes() != want.NumNodes() || got.NumPIs() != want.NumPIs() || got.NumPOs() != want.NumPOs() {
			t.Fatalf("%s: shape mismatch: %s %d/%d/%d vs %d/%d/%d", want.Name, got.Name,
				got.NumNodes(), got.NumPIs(), got.NumPOs(), want.NumNodes(), want.NumPIs(), want.NumPOs())
		}
		for id := 0; id < want.NumNodes(); id++ {
			if got.NodeAt(id) != want.NodeAt(id) {
				t.Fatalf("%s: node %d: %+v vs %+v", want.Name, id, got.NodeAt(id), want.NodeAt(id))
			}
		}
		for i := 0; i < want.NumPIs(); i++ {
			if got.PI(i) != want.PI(i) || got.PIName(i) != want.PIName(i) {
				t.Fatalf("%s: PI %d mismatch", want.Name, i)
			}
		}
		for i := 0; i < want.NumPOs(); i++ {
			if got.PO(i) != want.PO(i) || got.POName(i) != want.POName(i) {
				t.Fatalf("%s: PO %d mismatch", want.Name, i)
			}
		}
		if re := got.AppendBinary(nil); !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encoding differs", want.Name)
		}
		var wantBlif, gotBlif bytes.Buffer
		if err := blif.Write(&wantBlif, want); err != nil {
			t.Fatal(err)
		}
		if err := blif.Write(&gotBlif, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBlif.Bytes(), gotBlif.Bytes()) {
			t.Fatalf("%s: BLIF output differs after roundtrip", want.Name)
		}
	}
}

// TestCodecDecodedGraphIsBuildable checks that the decoder rebuilds the
// structural hash: And() on a decoded graph finds existing nodes
// instead of growing twins.
func TestCodecDecodedGraphIsBuildable(t *testing.T) {
	g := circuits.RCA(4)
	dec, err := aig.DecodeBinary(g.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	before := dec.NumNodes()
	for id := 0; id < before; id++ {
		if !dec.IsAnd(id) {
			continue
		}
		n := dec.NodeAt(id)
		if got := dec.And(n.Fanin0, n.Fanin1); got != aig.MakeLit(id, false) {
			t.Fatalf("And(%v, %v) = %v, want existing node %d", n.Fanin0, n.Fanin1, got, id)
		}
	}
	if dec.NumNodes() != before {
		t.Fatalf("re-Anding existing structure grew the graph: %d -> %d nodes", before, dec.NumNodes())
	}
}

// TestCodecDecodeErrors checks that corrupt encodings fail with
// ErrBadBinary and never panic: truncation at every prefix, bad magic,
// bad version, trailing garbage and invalid node kinds.
func TestCodecDecodeErrors(t *testing.T) {
	enc := circuits.CLA(4).AppendBinary(nil)
	for n := 0; n < len(enc); n++ {
		if _, err := aig.DecodeBinary(enc[:n]); !errors.Is(err, aig.ErrBadBinary) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadBinary", n, err)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := aig.DecodeBinary(bad); !errors.Is(err, aig.ErrBadBinary) {
		t.Fatalf("bad magic: err = %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[3] = 99
	if _, err := aig.DecodeBinary(bad); !errors.Is(err, aig.ErrBadBinary) {
		t.Fatalf("bad version: err = %v", err)
	}
	if _, err := aig.DecodeBinary(append(append([]byte(nil), enc...), 0)); !errors.Is(err, aig.ErrBadBinary) {
		t.Fatalf("trailing byte: err = %v", err)
	}
	// Flip every byte position once; decode must return an error or a
	// graph that still passes Check — never panic.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x55
		g, err := aig.DecodeBinary(mut)
		if err == nil {
			if cerr := g.Check(); cerr != nil {
				t.Fatalf("byte %d corrupt: decode accepted invalid graph: %v", i, cerr)
			}
		}
	}
}
