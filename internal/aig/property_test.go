package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a seeded random AIG with nPI inputs and roughly
// size AND nodes, returning it un-swept (tests cover dead logic too).
func randomGraph(seed int64, nPI, size int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New("rand")
	lits := make([]Lit, 0, nPI+size)
	for i := 0; i < nPI; i++ {
		lits = append(lits, g.AddPI("x"))
	}
	for len(lits) < nPI+size {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	nPO := 1 + rng.Intn(4)
	for i := 0; i < nPO; i++ {
		g.AddPO(lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1), "y")
	}
	return g
}

// evalAll evaluates every PO of g under one random assignment.
func evalAllPOs(g *Graph, assign map[int]bool) []bool {
	out := make([]bool, g.NumPOs())
	for i, l := range g.POs() {
		out[i] = evalLit(g, l, assign)
	}
	return out
}

func randomAssign(g *Graph, rng *rand.Rand) map[int]bool {
	assign := map[int]bool{}
	for _, pi := range g.PIs() {
		assign[pi] = rng.Intn(2) == 1
	}
	return assign
}

func TestQuickRandomGraphsAreValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 4+int(uint(seed)%6), 30)
		return g.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSweepPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 5, 40)
		s := g.Sweep()
		if s.Check() != nil || s.NumPIs() != g.NumPIs() || s.NumPOs() != g.NumPOs() {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for trial := 0; trial < 8; trial++ {
			assign := randomAssign(g, rng)
			// Map the assignment onto the swept graph's PIs by position.
			assign2 := map[int]bool{}
			for i, pi := range s.PIs() {
				assign2[pi] = assign[g.PIs()[i]]
			}
			a := evalAllPOs(g, assign)
			b := evalAllPOs(s, assign2)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 5, 30)
		c := g.Clone()
		if c.Check() != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x1234))
		for trial := 0; trial < 6; trial++ {
			assign := randomAssign(g, rng)
			assign2 := map[int]bool{}
			for i, pi := range c.PIs() {
				assign2[pi] = assign[g.PIs()[i]]
			}
			a := evalAllPOs(g, assign)
			b := evalAllPOs(c, assign2)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelsMonotonic(t *testing.T) {
	// Every AND node's level exceeds both fanin levels.
	f := func(seed int64) bool {
		g := randomGraph(seed, 6, 50)
		lv := g.Levels()
		for id := 0; id < g.NumNodes(); id++ {
			n := g.NodeAt(id)
			if n.Kind != KindAnd {
				continue
			}
			if lv[id] <= lv[n.Fanin0.Node()]-1 || lv[id] <= lv[n.Fanin1.Node()]-1 {
				return false
			}
			if lv[id] != max(lv[n.Fanin0.Node()], lv[n.Fanin1.Node()])+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMFFCWithinReach(t *testing.T) {
	// MFFC size is at least 1 and at most the number of AND nodes.
	f := func(seed int64) bool {
		g := randomGraph(seed, 5, 40)
		refs := g.RefCounts()
		for id := 0; id < g.NumNodes(); id++ {
			if !g.IsAnd(id) {
				continue
			}
			m := g.MFFCSize(id, refs)
			if m < 1 || m > g.NumAnds() {
				return false
			}
		}
		// Reference counts restored after all queries.
		refs2 := g.RefCounts()
		for i := range refs {
			if refs[i] != refs2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
