package aig

import "accals/internal/bitset"

// Levels returns the logic level of every node: 0 for the constant and
// PIs, 1 + max(fanin levels) for AND nodes.
func (g *Graph) Levels() []int {
	lv := make([]int, len(g.nodes))
	for id, n := range g.nodes {
		if n.Kind == KindAnd {
			l0 := lv[n.Fanin0.Node()]
			l1 := lv[n.Fanin1.Node()]
			if l0 < l1 {
				l0 = l1
			}
			lv[id] = l0 + 1
		}
	}
	return lv
}

// Depth returns the maximum level over all primary outputs.
func (g *Graph) Depth() int {
	lv := g.Levels()
	d := 0
	for _, l := range g.pos {
		if lv[l.Node()] > d {
			d = lv[l.Node()]
		}
	}
	return d
}

// Fanouts returns, for every node, the ids of the AND nodes that use it
// as a fanin. Primary outputs are not included; use RefCounts for
// reference counting that includes POs.
func (g *Graph) Fanouts() [][]int {
	fo := make([][]int, len(g.nodes))
	for id, n := range g.nodes {
		if n.Kind != KindAnd {
			continue
		}
		fo[n.Fanin0.Node()] = append(fo[n.Fanin0.Node()], id)
		if n.Fanin1.Node() != n.Fanin0.Node() {
			fo[n.Fanin1.Node()] = append(fo[n.Fanin1.Node()], id)
		}
	}
	return fo
}

// RefCounts returns the number of references to each node from AND
// fanins and primary outputs.
func (g *Graph) RefCounts() []int {
	refs := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		if n.Kind != KindAnd {
			continue
		}
		refs[n.Fanin0.Node()]++
		refs[n.Fanin1.Node()]++
	}
	for _, l := range g.pos {
		refs[l.Node()]++
	}
	return refs
}

// Reachable returns the set of node ids reachable from the primary
// outputs through fanin edges (the "live" logic).
func (g *Graph) Reachable() *bitset.Set {
	live := bitset.New(len(g.nodes))
	stack := make([]int, 0, len(g.pos))
	for _, l := range g.pos {
		if !live.Has(l.Node()) {
			live.Add(l.Node())
			stack = append(stack, l.Node())
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := g.nodes[id]
		if n.Kind != KindAnd {
			continue
		}
		for _, f := range [2]int{n.Fanin0.Node(), n.Fanin1.Node()} {
			if !live.Has(f) {
				live.Add(f)
				stack = append(stack, f)
			}
		}
	}
	live.Add(0)
	return live
}

// NumLiveAnds returns the number of AND nodes reachable from the POs.
func (g *Graph) NumLiveAnds() int {
	live := g.Reachable()
	c := 0
	live.ForEach(func(id int) {
		if g.nodes[id].Kind == KindAnd {
			c++
		}
	})
	return c
}

// TFO returns the transitive fanout of node id (including id itself)
// as a bit set over node ids, using the given fanout lists.
func (g *Graph) TFO(id int, fanouts [][]int) *bitset.Set {
	set := bitset.New(len(g.nodes))
	set.Add(id)
	stack := []int{id}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range fanouts[v] {
			if !set.Has(w) {
				set.Add(w)
				stack = append(stack, w)
			}
		}
	}
	return set
}

// TFI returns the transitive fanin of node id (including id itself).
func (g *Graph) TFI(id int) *bitset.Set {
	set := bitset.New(len(g.nodes))
	set.Add(id)
	stack := []int{id}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := g.nodes[v]
		if n.Kind != KindAnd {
			continue
		}
		for _, f := range [2]int{n.Fanin0.Node(), n.Fanin1.Node()} {
			if !set.Has(f) {
				set.Add(f)
				stack = append(stack, f)
			}
		}
	}
	return set
}

// TFOSet returns the union of the transitive fanouts of the source
// nodes (including the sources themselves) as a bit set over node ids,
// using the given fanout lists. A nil or empty source list yields an
// empty set.
func (g *Graph) TFOSet(srcs []int, fanouts [][]int) *bitset.Set {
	set := bitset.New(len(g.nodes))
	var stack []int
	for _, s := range srcs {
		if !set.Has(s) {
			set.Add(s)
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range fanouts[v] {
			if !set.Has(w) {
				set.Add(w)
				stack = append(stack, w)
			}
		}
	}
	return set
}

// FanoutBall returns the set of nodes within radius fanout edges of
// any seed node (seeds included): the targets whose depth-bounded TFI
// window can contain a seed. Distances are per-node minima over all
// seeds, so the ball is exactly the union of single-seed balls.
func (g *Graph) FanoutBall(seeds *bitset.Set, fanouts [][]int, radius int) *bitset.Set {
	set := bitset.New(len(g.nodes))
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	seeds.ForEach(func(id int) {
		dist[id] = 0
		set.Add(id)
		queue = append(queue, id)
	})
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] >= radius {
			continue
		}
		for _, w := range fanouts[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				set.Add(w)
				queue = append(queue, w)
			}
		}
	}
	return set
}

// TFIWithin returns the set of nodes reachable from any seed through
// at most depth fanin edges (seeds included) — the depth-bounded
// backward closure used to over-approximate which structural-hash
// probes a change can influence.
func (g *Graph) TFIWithin(seeds *bitset.Set, depth int) *bitset.Set {
	set := bitset.New(len(g.nodes))
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	seeds.ForEach(func(id int) {
		dist[id] = 0
		set.Add(id)
		queue = append(queue, id)
	})
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] >= depth {
			continue
		}
		n := g.nodes[v]
		if n.Kind != KindAnd {
			continue
		}
		for _, f := range [2]int{n.Fanin0.Node(), n.Fanin1.Node()} {
			if dist[f] < 0 {
				dist[f] = dist[v] + 1
				set.Add(f)
				queue = append(queue, f)
			}
		}
	}
	return set
}

// ShortestFanoutDistance returns the length (in edges) of the shortest
// directed path from node src to node dst through fanout edges, or -1
// if no such path exists. A distance of 0 means src == dst.
func (g *Graph) ShortestFanoutDistance(src, dst int, fanouts [][]int) int {
	if src == dst {
		return 0
	}
	dist := make(map[int]int, 64)
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range fanouts[v] {
			if _, seen := dist[w]; seen {
				continue
			}
			dist[w] = dist[v] + 1
			if w == dst {
				return dist[w]
			}
			queue = append(queue, w)
		}
	}
	return -1
}

// MFFCSize returns the size of the maximum fanout-free cone of node id:
// the number of AND nodes (including id) that would become dead if all
// references to id were removed. refs must come from RefCounts.
// The slice is restored before returning, so it can be reused.
func (g *Graph) MFFCSize(id int, refs []int) int {
	if g.nodes[id].Kind != KindAnd {
		return 0
	}
	var freed []int
	size := g.mffcDeref(id, refs, &freed)
	// Restore reference counts.
	for _, f := range freed {
		refs[f]++
	}
	return size
}

// MFFCSizeExcluding returns the MFFC size of node id while holding
// the keep nodes externally referenced. It models the area freed by
// replacing id with a function of the keep nodes: any part of id's
// cone feeding a keep node survives the replacement.
func (g *Graph) MFFCSizeExcluding(id int, refs []int, keep []int) int {
	for _, k := range keep {
		refs[k]++
	}
	size := g.MFFCSize(id, refs)
	for _, k := range keep {
		refs[k]--
	}
	return size
}

// mffcDeref recursively dereferences the fanins of id, counting nodes
// whose reference count drops to zero. Every decrement is recorded in
// freed so the caller can undo it.
func (g *Graph) mffcDeref(id int, refs []int, freed *[]int) int {
	n := g.nodes[id]
	size := 1
	for _, f := range [2]Lit{n.Fanin0, n.Fanin1} {
		fid := f.Node()
		refs[fid]--
		*freed = append(*freed, fid)
		if refs[fid] == 0 && g.nodes[fid].Kind == KindAnd {
			size += g.mffcDeref(fid, refs, freed)
		}
	}
	return size
}
