package aig

import (
	"testing"
	"testing/quick"
)

func TestLit(t *testing.T) {
	l := MakeLit(7, false)
	if l.Node() != 7 || l.IsCompl() {
		t.Fatalf("MakeLit(7,false) = %v", l)
	}
	n := l.Not()
	if n.Node() != 7 || !n.IsCompl() {
		t.Fatalf("Not() = %v", n)
	}
	if l.NotIf(false) != l || l.NotIf(true) != n {
		t.Fatalf("NotIf misbehaves")
	}
	if got := n.String(); got != "!n7" {
		t.Fatalf("String() = %q", got)
	}
}

func TestLitRoundTrip(t *testing.T) {
	f := func(node uint16, compl bool) bool {
		l := MakeLit(int(node), compl)
		return l.Node() == int(node) && l.IsCompl() == compl && l.Not().Not() == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	cases := []struct {
		name string
		got  Lit
		want Lit
	}{
		{"x&0", g.And(a, ConstFalse), ConstFalse},
		{"x&1", g.And(a, ConstTrue), a},
		{"x&x", g.And(a, a), a},
		{"x&!x", g.And(a, a.Not()), ConstFalse},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
	// Structural hashing: same conjunction built twice is one node.
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Errorf("strash failed: %v != %v", x, y)
	}
	if g.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", g.NumAnds())
	}
}

// evalLit computes a literal's value under a PI assignment by direct
// recursive evaluation — an independent oracle for the test.
func evalLit(g *Graph, l Lit, assign map[int]bool) bool {
	v := evalNode(g, l.Node(), assign)
	if l.IsCompl() {
		return !v
	}
	return v
}

func evalNode(g *Graph, id int, assign map[int]bool) bool {
	n := g.NodeAt(id)
	switch n.Kind {
	case KindConst:
		return false
	case KindPI:
		return assign[id]
	default:
		return evalLit(g, n.Fanin0, assign) && evalLit(g, n.Fanin1, assign)
	}
}

func TestGateTruthTables(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	s := g.AddPI("s")
	ops := []struct {
		name string
		lit  Lit
		fn   func(a, b, s bool) bool
	}{
		{"and", g.And(a, b), func(x, y, _ bool) bool { return x && y }},
		{"or", g.Or(a, b), func(x, y, _ bool) bool { return x || y }},
		{"xor", g.Xor(a, b), func(x, y, _ bool) bool { return x != y }},
		{"xnor", g.Xnor(a, b), func(x, y, _ bool) bool { return x == y }},
		{"mux", g.Mux(s, a, b), func(x, y, sel bool) bool {
			if sel {
				return x
			}
			return y
		}},
		{"maj3", g.Maj3(a, b, s), func(x, y, z bool) bool {
			n := 0
			for _, v := range []bool{x, y, z} {
				if v {
					n++
				}
			}
			return n >= 2
		}},
	}
	for pat := 0; pat < 8; pat++ {
		assign := map[int]bool{
			a.Node(): pat&1 != 0,
			b.Node(): pat&2 != 0,
			s.Node(): pat&4 != 0,
		}
		for _, op := range ops {
			want := op.fn(assign[a.Node()], assign[b.Node()], assign[s.Node()])
			if got := evalLit(g, op.lit, assign); got != want {
				t.Errorf("%s(pat=%d) = %v, want %v", op.name, pat, got, want)
			}
		}
	}
	if err := g.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func buildSmall(t *testing.T) (*Graph, Lit, Lit, Lit) {
	t.Helper()
	g := New("small")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(a, b)
	y := g.Or(x, c)
	g.AddPO(y, "y")
	g.AddPO(x, "x")
	return g, a, b, c
}

func TestCounts(t *testing.T) {
	g, _, _, _ := buildSmall(t)
	if g.NumPIs() != 3 || g.NumPOs() != 2 {
		t.Fatalf("interface counts wrong: %d PIs, %d POs", g.NumPIs(), g.NumPOs())
	}
	if g.NumAnds() != 2 {
		t.Fatalf("NumAnds = %d, want 2", g.NumAnds())
	}
	if g.NumLiveAnds() != 2 {
		t.Fatalf("NumLiveAnds = %d, want 2", g.NumLiveAnds())
	}
	if g.PIName(0) != "a" || g.POName(1) != "x" {
		t.Fatalf("names lost")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	g, _, _, _ := buildSmall(t)
	lv := g.Levels()
	// AND(a,b) at level 1; OR at level 2.
	if g.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", g.Depth())
	}
	for _, pi := range g.PIs() {
		if lv[pi] != 0 {
			t.Fatalf("PI level = %d, want 0", lv[pi])
		}
	}
}

func TestFanoutsAndRefs(t *testing.T) {
	g, a, b, _ := buildSmall(t)
	fo := g.Fanouts()
	x := g.And(a, b) // strash: existing node
	if len(fo[a.Node()]) != 1 || fo[a.Node()][0] != x.Node() {
		t.Fatalf("fanouts of a: %v", fo[a.Node()])
	}
	refs := g.RefCounts()
	// x feeds the OR node and PO "x".
	if refs[x.Node()] != 2 {
		t.Fatalf("refs[x] = %d, want 2", refs[x.Node()])
	}
}

func TestTFITFO(t *testing.T) {
	g, a, b, c := buildSmall(t)
	fo := g.Fanouts()
	x := g.And(a, b)
	y := g.Or(x, c)
	tfo := g.TFO(a.Node(), fo)
	if !tfo.Has(x.Node()) || !tfo.Has(y.Node()) || !tfo.Has(a.Node()) {
		t.Fatalf("TFO(a) incomplete: %v", tfo.Elements())
	}
	if tfo.Has(b.Node()) {
		t.Fatalf("TFO(a) contains sibling input b")
	}
	tfi := g.TFI(y.Node())
	for _, want := range []int{a.Node(), b.Node(), c.Node(), x.Node(), y.Node()} {
		if !tfi.Has(want) {
			t.Fatalf("TFI(y) missing node %d", want)
		}
	}
}

func TestShortestFanoutDistance(t *testing.T) {
	g, a, b, c := buildSmall(t)
	fo := g.Fanouts()
	x := g.And(a, b)
	y := g.Or(x, c)
	if d := g.ShortestFanoutDistance(a.Node(), x.Node(), fo); d != 1 {
		t.Fatalf("d(a,x) = %d, want 1", d)
	}
	// y is the OR output: path a -> x -> inner -> y has length 3 in
	// AIG terms (OR is AND + complements), so just require it found.
	if d := g.ShortestFanoutDistance(a.Node(), y.Node(), fo); d < 2 {
		t.Fatalf("d(a,y) = %d, want >= 2", d)
	}
	if d := g.ShortestFanoutDistance(y.Node(), a.Node(), fo); d != -1 {
		t.Fatalf("d(y,a) = %d, want -1", d)
	}
	if d := g.ShortestFanoutDistance(a.Node(), a.Node(), fo); d != 0 {
		t.Fatalf("d(a,a) = %d, want 0", d)
	}
}

func TestMFFC(t *testing.T) {
	g := New("mffc")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(a, b)
	y := g.And(x, c)
	g.AddPO(y, "y")
	refs := g.RefCounts()
	// y's MFFC contains y and x (x only feeds y).
	if got := g.MFFCSize(y.Node(), refs); got != 2 {
		t.Fatalf("MFFC(y) = %d, want 2", got)
	}
	if got := g.MFFCSize(x.Node(), refs); got != 1 {
		t.Fatalf("MFFC(x) = %d, want 1", got)
	}
	// refs must be restored.
	refs2 := g.RefCounts()
	for i := range refs {
		if refs[i] != refs2[i] {
			t.Fatalf("MFFCSize corrupted refs at node %d", i)
		}
	}
	// Shared node: x also feeding a PO shrinks y's MFFC.
	g.AddPO(x, "x")
	refs = g.RefCounts()
	if got := g.MFFCSize(y.Node(), refs); got != 1 {
		t.Fatalf("MFFC(y) with shared x = %d, want 1", got)
	}
}

func TestRebuildSubstitution(t *testing.T) {
	g, a, b, c := buildSmall(t)
	x := g.And(a, b)
	// Replace x by constant true: y = OR(1, c) = 1, PO x = 1.
	ng := g.Rebuild(map[int]ReplaceFunc{
		x.Node(): func(_ *Graph, _ func(int) Lit) Lit { return ConstTrue },
	})
	if err := ng.Check(); err != nil {
		t.Fatalf("Check after rebuild: %v", err)
	}
	if ng.NumPIs() != 3 || ng.NumPOs() != 2 {
		t.Fatalf("interface changed: %d/%d", ng.NumPIs(), ng.NumPOs())
	}
	if ng.PO(0) != ConstTrue || ng.PO(1) != ConstTrue {
		t.Fatalf("POs = %v, %v; want const true", ng.PO(0), ng.PO(1))
	}
	if ng.NumAnds() != 0 {
		t.Fatalf("NumAnds = %d, want 0 after sweep", ng.NumAnds())
	}
	_, _ = b, c
}

func TestRebuildWireSubstitution(t *testing.T) {
	// Replace x = AND(a,b) by wire c; y = OR(c, c) = c.
	g, a, b, c := buildSmall(t)
	gOld := g.Clone()
	xl := g.And(a, b) // structural hash returns the existing node
	ng := g.Rebuild(map[int]ReplaceFunc{
		xl.Node(): func(_ *Graph, copyOf func(int) Lit) Lit { return copyOf(c.Node()) },
	})
	if err := ng.Check(); err != nil {
		t.Fatal(err)
	}
	// Functional check on all 8 assignments: y' = c, x' = c.
	for pat := 0; pat < 8; pat++ {
		assign := map[int]bool{}
		for i, pi := range ng.PIs() {
			assign[pi] = pat&(1<<i) != 0
		}
		cv := pat&4 != 0
		if got := evalLit(ng, ng.PO(0), assign); got != cv {
			t.Fatalf("pat %d: PO0 = %v, want %v", pat, got, cv)
		}
		if got := evalLit(ng, ng.PO(1), assign); got != cv {
			t.Fatalf("pat %d: PO1 = %v, want %v", pat, got, cv)
		}
	}
	// The original is untouched.
	if gOld.NumAnds() != g.NumAnds() {
		t.Fatalf("original mutated")
	}
}

func TestSweepKeepsUnusedPIs(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	g.AddPI("unused")
	g.AddPO(a, "y")
	ng := g.Sweep()
	if ng.NumPIs() != 2 {
		t.Fatalf("Sweep dropped a PI: %d", ng.NumPIs())
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b), "y")
	if err := g.Check(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g, a, b, _ := buildSmall(t)
	c := g.Clone()
	if c.NumAnds() != g.NumAnds() || c.NumPIs() != g.NumPIs() || c.NumPOs() != g.NumPOs() {
		t.Fatalf("clone shape differs")
	}
	// Growing the original must not affect the clone.
	g.And(g.And(a, b), a.Not())
	if c.NumAnds() == g.NumAnds() {
		t.Fatalf("clone shares storage with original")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeAnd(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	// Existing node is found without growing the graph.
	n := g.NumNodes()
	got, ok := g.ProbeAnd(b, a)
	if !ok || got != x {
		t.Fatalf("ProbeAnd(existing) = %v, %v", got, ok)
	}
	// Trivial cases fold.
	if got, ok := g.ProbeAnd(a, ConstFalse); !ok || got != ConstFalse {
		t.Fatal("x&0 should fold")
	}
	if got, ok := g.ProbeAnd(a, ConstTrue); !ok || got != a {
		t.Fatal("x&1 should fold")
	}
	if got, ok := g.ProbeAnd(a, a.Not()); !ok || got != ConstFalse {
		t.Fatal("x&!x should fold")
	}
	// Unknown conjunction reports not-ok and creates nothing.
	if _, ok := g.ProbeAnd(a, b.Not()); ok {
		t.Fatal("ProbeAnd invented a node")
	}
	if g.NumNodes() != n {
		t.Fatal("ProbeAnd changed the graph")
	}
}
