package aig

import (
	"math/rand"
	"testing"
)

// randomRepl picks a few AND targets of g and builds replacement
// callbacks for them: a constant or a (possibly complemented) wire to
// an earlier node, the same shapes LACs produce. Returns the map and
// the target list.
func randomRepl(g *Graph, rng *rand.Rand) (map[int]ReplaceFunc, []int) {
	var ands []int
	for id := 1; id < g.NumNodes(); id++ {
		if g.IsAnd(id) {
			ands = append(ands, id)
		}
	}
	if len(ands) == 0 {
		return nil, nil
	}
	n := 1 + rng.Intn(3)
	repl := make(map[int]ReplaceFunc, n)
	var targets []int
	for i := 0; i < n; i++ {
		t := ands[rng.Intn(len(ands))]
		if _, dup := repl[t]; dup {
			continue
		}
		targets = append(targets, t)
		switch rng.Intn(3) {
		case 0:
			c := ConstFalse.NotIf(rng.Intn(2) == 1)
			repl[t] = func(ng *Graph, copyOf func(int) Lit) Lit { return c }
		default:
			src := 1 + rng.Intn(t) // strictly earlier node
			compl := rng.Intn(2) == 1
			repl[t] = func(ng *Graph, copyOf func(int) Lit) Lit {
				return copyOf(src).NotIf(compl)
			}
		}
	}
	return repl, targets
}

// checkDeltaInvariants asserts the structural contract of NewDelta.
func checkDeltaInvariants(t *testing.T, d *Delta, targets []int) {
	t.Helper()
	old, next := d.Old, d.New
	for x := 1; x < old.NumNodes(); x++ {
		if d.PureOld.Has(x) == d.BadOld.Has(x) {
			t.Fatalf("node %d: PureOld/BadOld must partition (pure=%v bad=%v)",
				x, d.PureOld.Has(x), d.BadOld.Has(x))
		}
	}
	lastNew := 0
	for x := 1; x < old.NumNodes(); x++ {
		if !d.Pure(x) {
			continue
		}
		l := d.M[x]
		if l.IsNone() || l.IsCompl() {
			t.Fatalf("pure node %d has image %v", x, l)
		}
		y := l.Node()
		if y <= lastNew {
			t.Fatalf("pure image ids not strictly monotone at old %d (new %d after %d)", x, y, lastNew)
		}
		lastNew = y
		if d.Rev[y] != x {
			t.Fatalf("Rev[%d] = %d, want %d", y, d.Rev[y], x)
		}
		if next.NodeAt(y).Kind != old.NodeAt(x).Kind {
			t.Fatalf("pure node %d changed kind", x)
		}
	}
	for _, tgt := range targets {
		if !d.BadOld.Has(tgt) {
			t.Fatalf("replacement target %d classified pure", tgt)
		}
	}
	fresh := map[int]bool{}
	for i, y := range d.FreshNew {
		if i > 0 && y <= d.FreshNew[i-1] {
			t.Fatal("FreshNew not ascending")
		}
		fresh[y] = true
	}
	for y := 1; y < next.NumNodes(); y++ {
		want := next.IsAnd(y) && d.Rev[y] < 0
		if fresh[y] != want {
			t.Fatalf("FreshNew membership of new node %d = %v, want %v", y, fresh[y], want)
		}
	}
}

// TestRebuildMappedIdentity covers the repl-free path: every live node
// maps to a literal computing the same function, and the PO functions
// are preserved.
func TestRebuildMappedIdentity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(seed, 5, 40)
		ng, m := g.RebuildMapped(nil)
		if err := ng.Check(); err != nil {
			t.Fatal(err)
		}
		d := NewDelta(g, ng, m, nil)
		checkDeltaInvariants(t, d, nil)
		live := g.Reachable()
		rng := rand.New(rand.NewSource(seed + 1000))
		for trial := 0; trial < 6; trial++ {
			aOld, aNew := pairedAssign(g, ng, rng)
			for x := 1; x < g.NumNodes(); x++ {
				if !live.Has(x) && !g.IsPI(x) {
					// PIs survive the sweep even when unused; dead
					// AND logic must map to LitNone.
					if !m[x].IsNone() {
						t.Fatalf("dead node %d has image %v", x, m[x])
					}
					continue
				}
				if m[x].IsNone() {
					t.Fatalf("live node %d has no image", x)
				}
				got := evalLit(ng, m[x], aNew)
				want := evalLit(g, MakeLit(x, false), aOld)
				if got != want {
					t.Fatalf("seed %d node %d: mapped value %v, want %v", seed, x, got, want)
				}
			}
			wantPOs := evalAllPOs(g, aOld)
			gotPOs := evalAllPOs(ng, aNew)
			for i := range wantPOs {
				if gotPOs[i] != wantPOs[i] {
					t.Fatalf("seed %d PO %d differs after identity rebuild", seed, i)
				}
			}
		}
	}
}

// TestRebuildMappedWithReplacements applies random LAC-shaped
// substitutions and asserts that (a) delta invariants hold and (b)
// every pure node outside the transitive fanout of the replaced
// targets keeps its function through the map — the property the
// incremental engine's clean/dirty split is built on.
func TestRebuildMappedWithReplacements(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := randomGraph(seed, 5, 45)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		repl, targets := randomRepl(g, rng)
		if repl == nil {
			continue
		}
		ng, m := g.RebuildMapped(repl)
		if err := ng.Check(); err != nil {
			t.Fatal(err)
		}
		d := NewDelta(g, ng, m, targets)
		checkDeltaInvariants(t, d, targets)

		fo := g.Fanouts()
		vd := g.TFOSet(targets, fo)
		for trial := 0; trial < 6; trial++ {
			aOld, aNew := pairedAssign(g, ng, rng)
			for x := 1; x < g.NumNodes(); x++ {
				if !d.Pure(x) || vd.Has(x) {
					continue
				}
				got := evalLit(ng, d.M[x], aNew)
				want := evalLit(g, MakeLit(x, false), aOld)
				if got != want {
					t.Fatalf("seed %d: pure node %d outside the dirty fanout changed value", seed, x)
				}
			}
		}
	}
}

// pairedAssign draws one random PI assignment and keys it by each
// graph's PI node ids (ids can shift across a rebuild; PI order is
// preserved).
func pairedAssign(g, ng *Graph, rng *rand.Rand) (map[int]bool, map[int]bool) {
	aOld := map[int]bool{}
	aNew := map[int]bool{}
	for i := 0; i < g.NumPIs(); i++ {
		v := rng.Intn(2) == 1
		aOld[g.PI(i)] = v
		aNew[ng.PI(i)] = v
	}
	return aOld, aNew
}
