package opt

import (
	"testing"
	"testing/quick"

	"accals/internal/aig"
	"accals/internal/circuits"
	"accals/internal/simulate"
)

func equivalent(t *testing.T, a, b *aig.Graph, seed int64) {
	t.Helper()
	p := simulate.NewPatterns(a.NumPIs(), 1024, seed)
	va := simulate.MustRun(a, p).POValues(a)
	vb := simulate.MustRun(b, p).POValues(b)
	for j := range va {
		for w := range va[j] {
			if va[j][w] != vb[j][w] {
				t.Fatalf("PO %d differs after balance", j)
			}
		}
	}
}

func TestBalanceChain(t *testing.T) {
	// A left-leaning 16-input AND chain has depth 15; balanced it
	// must come out at depth 4.
	g := aig.New("chain")
	acc := g.AddPI("x0")
	for i := 1; i < 16; i++ {
		acc = g.And(acc, g.AddPI("x"))
	}
	g.AddPO(acc, "y")
	if g.Depth() != 15 {
		t.Fatalf("chain depth = %d", g.Depth())
	}
	b := Balance(g)
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	if b.Depth() != 4 {
		t.Fatalf("balanced depth = %d, want 4", b.Depth())
	}
	equivalent(t, g, b, 3)
}

func TestBalancePreservesFunctionOnBenchmarks(t *testing.T) {
	for _, name := range []string{"mtp8", "cla32", "alu4", "c3540", "term1"} {
		g, err := circuits.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := Balance(g)
		if err := b.Check(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.NumPIs() != g.NumPIs() || b.NumPOs() != g.NumPOs() {
			t.Fatalf("%s: interface changed", name)
		}
		if b.Depth() > g.Depth() {
			t.Errorf("%s: depth grew %d -> %d", name, g.Depth(), b.Depth())
		}
		equivalent(t, g, b, 5)
	}
}

func TestBalanceIdempotentDepth(t *testing.T) {
	g, _ := circuits.ByName("c880")
	b1 := Balance(g)
	b2 := Balance(b1)
	if b2.Depth() > b1.Depth() {
		t.Fatalf("second balance grew depth %d -> %d", b1.Depth(), b2.Depth())
	}
	equivalent(t, b1, b2, 7)
}

func TestQuickBalanceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		g := circuits.RandomLogic("r", 8, 3, 120, seed)
		b := Balance(g)
		if b.Check() != nil || b.Depth() > g.Depth() {
			return false
		}
		p := simulate.Exhaustive(8)
		va := simulate.MustRun(g, p).POValues(g)
		vb := simulate.MustRun(b, p).POValues(b)
		for j := range va {
			for w := range va[j] {
				if va[j][w] != vb[j][w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
