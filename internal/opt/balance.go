// Package opt provides structural AIG optimisation passes used to
// prepare circuits before approximate synthesis, standing in for the
// paper's ABC preprocessing ("strash; resyn2"). Balance rebuilds
// single-fanout conjunction chains as balanced trees, reducing depth
// (and often size, through structural hashing) without changing the
// function.
package opt

import (
	"context"
	"sort"
	"time"

	"accals/internal/aig"
	"accals/internal/runctl"
)

// Balance returns a functionally equivalent graph in which maximal
// single-fanout AND chains are rebuilt as level-balanced trees
// (smallest-level operands combined first, Huffman style).
func Balance(g *aig.Graph) *aig.Graph {
	ng, _ := BalanceCtx(context.Background(), g)
	return ng
}

// balanceCheckStride is how many nodes BalanceCtx processes between
// cancellation checks.
const balanceCheckStride = 1 << 12

// BalanceCtx is Balance with cooperative cancellation: on very large
// graphs the pass checks ctx every few thousand nodes and returns
// (nil, ctx.Err()) when cancelled or past the deadline.
func BalanceCtx(ctx context.Context, g *aig.Graph) (*aig.Graph, error) {
	ctl := runctl.NewController(ctx, time.Time{}, 0, time.Time{})
	ng := aig.New(g.Name)
	refs := g.RefCounts()
	copyLit := make([]aig.Lit, g.NumNodes())
	level := make(map[aig.Lit]int) // level of new literals (by node)

	lvlOf := func(l aig.Lit) int { return level[l&^1] }
	mkAnd := func(a, b aig.Lit) aig.Lit {
		out := ng.And(a, b)
		if out.Node() != 0 {
			la, lb := lvlOf(a), lvlOf(b)
			if lb > la {
				la = lb
			}
			if _, seen := level[out&^1]; !seen {
				level[out&^1] = la + 1
			}
		}
		return out
	}

	for id := 0; id < g.NumNodes(); id++ {
		if id%balanceCheckStride == balanceCheckStride-1 {
			if reason, stop := ctl.Stop(); stop {
				return nil, reason.Err()
			}
		}
		switch n := g.NodeAt(id); n.Kind {
		case aig.KindConst:
			copyLit[id] = aig.ConstFalse
		case aig.KindPI:
			copyLit[id] = ng.AddPI(g.PIName(ng.NumPIs()))
		case aig.KindAnd:
			leaves := conjLeaves(g, id, refs)
			ops := make([]aig.Lit, len(leaves))
			for i, l := range leaves {
				ops[i] = copyLit[l.Node()].NotIf(l.IsCompl())
			}
			// Combine the two lowest-level operands first.
			for len(ops) > 1 {
				sort.SliceStable(ops, func(i, j int) bool { return lvlOf(ops[i]) < lvlOf(ops[j]) })
				merged := mkAnd(ops[0], ops[1])
				ops = append([]aig.Lit{merged}, ops[2:]...)
			}
			copyLit[id] = ops[0]
		}
	}
	for i, l := range g.POs() {
		ng.AddPO(copyLit[l.Node()].NotIf(l.IsCompl()), g.POName(i))
	}
	return ng.Sweep(), nil
}

// conjLeaves collects the operand literals of the maximal conjunction
// rooted at AND node id: non-complemented AND fanins with a single
// reference are inlined recursively.
func conjLeaves(g *aig.Graph, id int, refs []int) []aig.Lit {
	var out []aig.Lit
	var walk func(l aig.Lit)
	walk = func(l aig.Lit) {
		n := l.Node()
		if !l.IsCompl() && g.IsAnd(n) && refs[n] == 1 {
			nd := g.NodeAt(n)
			walk(nd.Fanin0)
			walk(nd.Fanin1)
			return
		}
		out = append(out, l)
	}
	nd := g.NodeAt(id)
	walk(nd.Fanin0)
	walk(nd.Fanin1)
	return out
}
