package par

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if Resolve(1) != 1 || Resolve(3) != 3 {
		t.Fatal("positive worker counts must pass through")
	}
	if Resolve(0) < 1 || Resolve(-5) < 1 {
		t.Fatal("non-positive worker counts must resolve to at least one worker")
	}
}

// TestBlockPartition checks that every (workers, n) partition covers
// [0,n) exactly once with non-overlapping contiguous ranges.
func TestBlockPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 8, 64} {
		for _, n := range []int{0, 1, 2, 3, 7, 8, 63, 64, 65, 1000} {
			blocks := Blocks(workers, n)
			next := 0
			for s := 0; s < blocks; s++ {
				begin, end := Block(s, blocks, n)
				if begin != next {
					t.Fatalf("workers=%d n=%d shard %d begins at %d, want %d", workers, n, s, begin, next)
				}
				if end < begin {
					t.Fatalf("workers=%d n=%d shard %d has end %d < begin %d", workers, n, s, end, begin)
				}
				next = end
			}
			if n > 0 && next != n {
				t.Fatalf("workers=%d n=%d partition covers [0,%d), want [0,%d)", workers, n, next, n)
			}
		}
	}
}

// TestBlocksMin checks the min-work-per-shard cap: shards never carry
// fewer than min units, the cap never raises the block count, and
// min <= 1 leaves Blocks untouched.
func TestBlocksMin(t *testing.T) {
	cases := []struct {
		workers, n, min, want int
	}{
		{8, 12, 1, 8},  // min<=1 disables the cap
		{8, 12, 0, 8},  //
		{8, 12, 2, 6},  // 12 units / min 2 -> at most 6 shards
		{4, 12, 2, 4},  // cap above worker count: unchanged
		{8, 12, 4, 3},  //
		{8, 12, 5, 2},  // floor division: 12/5 = 2
		{8, 12, 13, 1}, // min above n collapses to sequential
		{8, 3, 4, 1},   //
		{1000, 64, 16, 4},
		{4, 0, 8, 1},     // n=0 still reports one (empty) block
		{8, 1944, 42, 8}, // plentiful work: worker count wins
	}
	for _, c := range cases {
		if got := BlocksMin(c.workers, c.n, c.min); got != c.want {
			t.Fatalf("BlocksMin(%d, %d, %d) = %d, want %d", c.workers, c.n, c.min, got, c.want)
		}
		// The cap must never exceed Blocks and every shard of the capped
		// partition must carry at least min units (when n permits).
		got := BlocksMin(c.workers, c.n, c.min)
		if b := Blocks(c.workers, c.n); got > b {
			t.Fatalf("BlocksMin(%d, %d, %d) = %d exceeds Blocks = %d", c.workers, c.n, c.min, got, b)
		}
		if c.min > 1 && c.n >= c.min {
			for s := 0; s < got; s++ {
				begin, end := Block(s, got, c.n)
				if end-begin < c.min {
					t.Fatalf("BlocksMin(%d, %d, %d): shard %d carries %d units, want >= %d", c.workers, c.n, c.min, s, end-begin, c.min)
				}
			}
		}
	}
}

// TestForCoversAllIndices runs For at several worker counts and checks
// every index is visited exactly once.
func TestForCoversAllIndices(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 4, 8, 100} {
		visits := make([]int32, n)
		For(workers, n, func(shard, begin, end int) {
			for i := begin; i < end; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestForDeterministicShards checks that shard boundaries observed by
// the callback are exactly the Block partition, independent of
// scheduling.
func TestForDeterministicShards(t *testing.T) {
	const workers, n = 4, 103
	blocks := Blocks(workers, n)
	got := make([][2]int, blocks)
	For(workers, n, func(shard, begin, end int) {
		got[shard] = [2]int{begin, end}
	})
	for s := 0; s < blocks; s++ {
		b, e := Block(s, blocks, n)
		if got[s] != [2]int{b, e} {
			t.Fatalf("shard %d saw %v, want [%d %d]", s, got[s], b, e)
		}
	}
}

func TestDoSequentialOrder(t *testing.T) {
	var order []int
	Do(false,
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("sequential Do ran out of order: %v", order)
	}
}

func TestDoParallelRunsAll(t *testing.T) {
	var a, b atomic.Bool
	Do(true, func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatal("parallel Do did not run every function")
	}
}

func TestForTimed(t *testing.T) {
	tm := ForTimed(4, 16, func(shard, begin, end int) {
		time.Sleep(time.Millisecond)
	})
	if len(tm.Shards) != 4 {
		t.Fatalf("got %d shard timings, want 4", len(tm.Shards))
	}
	if tm.Elapsed <= 0 {
		t.Fatal("elapsed time not recorded")
	}
	for s, d := range tm.Shards {
		if d <= 0 {
			t.Fatalf("shard %d busy time not recorded", s)
		}
	}
	if u := tm.Utilization(); u < 0 || u > 1 {
		t.Fatalf("utilization %v out of [0,1]", u)
	}
	if (Timing{}).Utilization() != 0 {
		t.Fatal("zero Timing must report zero utilization")
	}
}

func TestSlabPoolReuse(t *testing.T) {
	var sp SlabPool
	buf := sp.Get(128)
	if len(buf) != 128 {
		t.Fatalf("got length %d, want 128", len(buf))
	}
	buf[0] = 42
	sp.Put(buf)
	// A smaller request may reuse the same backing array.
	again := sp.Get(64)
	if len(again) != 64 {
		t.Fatalf("got length %d, want 64", len(again))
	}
	// A larger request must grow.
	big := sp.Get(1 << 16)
	if len(big) != 1<<16 {
		t.Fatalf("got length %d, want %d", len(big), 1<<16)
	}
	sp.Put(nil) // must not panic
}
