// Package par is the deterministic worker-pool layer shared by the
// hot evaluation paths (bit-parallel simulation, batch estimation,
// duel measurement). It is intentionally tiny and stdlib-only:
// goroutines, sync.WaitGroup and sync.Pool — no atomics-order-
// dependent reductions, no channels on the hot path.
//
// Determinism contract: every primitive partitions its index space
// into fixed contiguous blocks computed only from (workers, n), and
// callers merge per-shard results in shard order (or with operations
// that are exactly associative and commutative, such as bitwise OR and
// integer addition). Under that discipline a run with Workers: N is
// bit-identical to Workers: 1 — the property the determinism tests in
// internal/core assert end to end.
package par

import (
	"runtime"
	"sync"
	"time"
)

// Resolve maps an Options.Workers-style setting to a concrete worker
// count: values <= 0 mean "use every CPU" (runtime.GOMAXPROCS(0)),
// 1 means sequential execution on the calling goroutine, and any
// other value is taken as-is.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Blocks returns the number of contiguous blocks [0,n) is split into
// for the given worker count: min(workers, n), at least 1 when n > 0.
func Blocks(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// BlocksMin returns Blocks(workers, n) additionally capped so that
// every shard carries at least min units of work. Fanning a small batch
// across many shards buys no speedup — each extra shard costs a
// goroutine handoff plus its own accumulator and cache working set —
// so hot paths with cheap per-unit work cap their fan-out here. min <=
// 1 disables the cap. Like Blocks, the result is a pure function of its
// arguments (never of the host's CPU count), keeping shard boundaries
// reproducible; and since callers merge shards order-free, capping
// never changes results — only how they are computed.
func BlocksMin(workers, n, min int) int {
	blocks := Blocks(workers, n)
	if min > 1 && n < blocks*min {
		blocks = n / min
		if blocks < 1 {
			blocks = 1
		}
	}
	return blocks
}

// Block returns the half-open range [begin, end) of block s of the
// given block count over [0,n). Boundaries depend only on (blocks, n),
// never on scheduling, so shard assignment is reproducible.
func Block(s, blocks, n int) (begin, end int) {
	return s * n / blocks, (s + 1) * n / blocks
}

// For runs fn over [0,n) split into Blocks(workers, n) contiguous
// shards, one goroutine per shard (the last shard runs on the calling
// goroutine). With workers <= 1, or n <= 1, fn runs inline — the exact
// legacy sequential path. For returns once every shard has finished.
//
// fn must confine its writes to state owned by its shard (or indexed
// by its shard number); For imposes no ordering between shards.
func For(workers, n int, fn func(shard, begin, end int)) {
	if n <= 0 {
		return
	}
	blocks := Blocks(workers, n)
	if blocks == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(blocks - 1)
	for s := 0; s < blocks-1; s++ {
		begin, end := Block(s, blocks, n)
		go func(s, begin, end int) {
			defer wg.Done()
			fn(s, begin, end)
		}(s, begin, end)
	}
	begin, end := Block(blocks-1, blocks, n)
	fn(blocks-1, begin, end)
	wg.Wait()
}

// Timing describes one timed parallel region: its wall-clock span and
// the busy time of each shard, in shard order.
type Timing struct {
	// Elapsed is the wall-clock duration of the whole region.
	Elapsed time.Duration
	// Shards holds each shard's busy time, indexed by shard number.
	Shards []time.Duration
}

// Utilization returns the region's worker utilization: total shard
// busy time over (elapsed × shard count), clamped to [0, 1]. A value
// near 1 means the shards were balanced and the workers saturated;
// low values indicate skew or scheduling overhead.
func (t Timing) Utilization() float64 {
	if t.Elapsed <= 0 || len(t.Shards) == 0 {
		return 0
	}
	var busy time.Duration
	for _, d := range t.Shards {
		busy += d
	}
	u := float64(busy) / (float64(t.Elapsed) * float64(len(t.Shards)))
	if u > 1 {
		u = 1
	}
	return u
}

// ForTimed is For with per-shard timing, for the observability layer's
// worker-utilization metrics. The slice in the returned Timing is
// freshly allocated per call; use For on paths where the measurement
// itself would be noise.
func ForTimed(workers, n int, fn func(shard, begin, end int)) Timing {
	if n <= 0 {
		return Timing{}
	}
	blocks := Blocks(workers, n)
	t := Timing{Shards: make([]time.Duration, blocks)}
	start := time.Now()
	For(workers, n, func(shard, begin, end int) {
		s := time.Now()
		fn(shard, begin, end)
		t.Shards[shard] = time.Since(s)
	})
	t.Elapsed = time.Since(start)
	return t
}

// Do runs the given functions and waits for all of them. With parallel
// false (or fewer than two functions) they run sequentially in order —
// the legacy path; otherwise each extra function gets its own
// goroutine while the first runs on the caller. The functions must
// write to disjoint state; Do imposes no ordering between them.
func Do(parallel bool, fns ...func()) {
	if !parallel || len(fns) < 2 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// SlabPool recycles large []uint64 backing buffers (simulation slabs,
// estimator arenas) across rounds, cutting steady-state allocations of
// the evaluation engine to near zero. It is a thin wrapper over
// sync.Pool: Get returns a buffer with at least the requested length
// (contents undefined — callers overwrite or zero as needed), Put
// recycles one. All methods are safe for concurrent use.
type SlabPool struct {
	p sync.Pool
}

// Get returns a buffer of length n. A pooled buffer is reused when its
// capacity suffices; otherwise a fresh one is allocated. Contents are
// unspecified.
func (sp *SlabPool) Get(n int) []uint64 {
	if v, ok := sp.p.Get().(*[]uint64); ok && v != nil {
		if cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]uint64, n)
}

// Put recycles a buffer obtained from Get. The caller must not retain
// any reference into it afterwards.
func (sp *SlabPool) Put(buf []uint64) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	sp.p.Put(&buf)
}
