package mis

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func completeGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	g.AddEdge(n-1, 0)
	return g
}

func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // duplicate ignored
	g.AddEdge(2, 2) // self-loop ignored
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(2, 3) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(0) != 1 || g.Degree(3) != 0 {
		t.Fatal("Degree wrong")
	}
	if !g.IsIndependent([]int{2, 3}) || g.IsIndependent([]int{0, 1}) {
		t.Fatal("IsIndependent wrong")
	}
}

func TestExactKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty5", NewGraph(5), 5},
		{"path5", pathGraph(5), 3},
		{"path6", pathGraph(6), 3},
		{"cycle5", cycleGraph(5), 2},
		{"cycle6", cycleGraph(6), 3},
		{"k5", completeGraph(5), 1},
		{"k1", completeGraph(1), 1},
	}
	for _, c := range cases {
		got := Exact(c.g)
		if len(got) != c.want {
			t.Errorf("%s: |MIS| = %d, want %d", c.name, len(got), c.want)
		}
		if !c.g.IsIndependent(got) {
			t.Errorf("%s: result not independent: %v", c.name, got)
		}
	}
}

func TestGreedyAndImproveAreIndependentSets(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(80, 0.15, seed)
		s := g.Greedy(nil)
		if !g.IsIndependent(s) {
			t.Fatalf("greedy result not independent (seed %d)", seed)
		}
		im := g.Improve(s)
		if !g.IsIndependent(im) {
			t.Fatalf("improved result not independent (seed %d)", seed)
		}
		if len(im) < len(s) {
			t.Fatalf("Improve shrank the set: %d -> %d", len(s), len(im))
		}
	}
}

func TestSolveMatchesExactOnSmallGraphs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(40, 0.2, seed)
		exact := Exact(g)
		heur := g.Improve(g.Greedy(nil))
		if len(heur) < len(exact)-2 {
			t.Errorf("seed %d: heuristic %d far below optimum %d", seed, len(heur), len(exact))
		}
		// Solve dispatches to Exact at this size.
		sol := Solve(g, 1)
		if len(sol) != len(exact) {
			t.Errorf("seed %d: Solve %d != Exact %d", seed, len(sol), len(exact))
		}
	}
}

func TestSolveLargeGraph(t *testing.T) {
	g := randomGraph(300, 0.05, 7)
	s := Solve(g, 1)
	if !g.IsIndependent(s) {
		t.Fatal("Solve result not independent")
	}
	if len(s) < 30 {
		t.Fatalf("Solve found only %d vertices on a sparse 300-vertex graph", len(s))
	}
	// Determinism.
	s2 := Solve(g, 1)
	if len(s) != len(s2) {
		t.Fatal("Solve not deterministic")
	}
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("Solve not deterministic")
		}
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	if s := Solve(NewGraph(0), 1); s != nil {
		t.Fatalf("Solve on empty graph = %v", s)
	}
}

func TestQuickSolveIndependence(t *testing.T) {
	f := func(seed int64, edges []uint8) bool {
		n := 30
		g := NewGraph(n)
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(int(edges[i])%n, int(edges[i+1])%n)
		}
		s := Solve(g, seed)
		if !g.IsIndependent(s) {
			return false
		}
		// Maximality: no vertex outside can be added.
		in := map[int]bool{}
		for _, v := range s {
			in[v] = true
		}
		for v := 0; v < n; v++ {
			if in[v] {
				continue
			}
			free := true
			for _, u := range s {
				if g.HasEdge(u, v) {
					free = false
					break
				}
			}
			if free {
				return false // could have been added
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
