// Package mis provides maximum independent set solvers for the small
// graphs AccALS builds over candidate LACs. It stands in for the KaMIS
// tool used by the paper: the graphs here have at most a few hundred
// vertices (bounded by the top-LAC set size), where a greedy
// construction refined by (1,2)-swap local search is near-optimal. An
// exact branch-and-bound solver handles graphs of up to 64 vertices
// and is used in tests to validate the heuristic.
package mis

import (
	"math/bits"
	"math/rand"
	"sort"

	"accals/internal/bitset"
)

// Graph is a simple undirected graph on vertices 0..n-1.
type Graph struct {
	n   int
	adj []*bitset.Set
	deg []int
}

// NewGraph returns an edgeless graph with n vertices.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]*bitset.Set, n), deg: make([]int, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge (u, v). Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || g.adj[u].Has(v) {
		return
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
	g.deg[u]++
	g.deg[v]++
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u].Has(v) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.deg[v] }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	s := 0
	for _, d := range g.deg {
		s += d
	}
	return s / 2
}

// IsIndependent reports whether the given vertex set has no internal
// edges.
func (g *Graph) IsIndependent(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.adj[set[i]].Has(set[j]) {
				return false
			}
		}
	}
	return true
}

// Greedy builds an independent set by repeatedly taking a minimum
// residual-degree vertex and deleting its neighbourhood. The order
// slice, when non-nil, breaks degree ties (earlier wins); otherwise
// lower vertex ids win, making the result deterministic.
func (g *Graph) Greedy(order []int) []int {
	rank := make([]int, g.n)
	for i := range rank {
		rank[i] = i
	}
	if order != nil {
		for pos, v := range order {
			rank[v] = pos
		}
	}
	alive := bitset.New(g.n)
	for v := 0; v < g.n; v++ {
		alive.Add(v)
	}
	resDeg := append([]int(nil), g.deg...)
	var out []int
	remaining := g.n
	for remaining > 0 {
		best, bestDeg, bestRank := -1, g.n+1, g.n+1
		alive.ForEach(func(v int) {
			if resDeg[v] < bestDeg || (resDeg[v] == bestDeg && rank[v] < bestRank) {
				best, bestDeg, bestRank = v, resDeg[v], rank[v]
			}
		})
		out = append(out, best)
		// Delete best and its alive neighbourhood.
		del := []int{best}
		g.adj[best].ForEach(func(u int) {
			if alive.Has(u) {
				del = append(del, u)
			}
		})
		for _, d := range del {
			alive.Remove(d)
			remaining--
			g.adj[d].ForEach(func(u int) {
				if alive.Has(u) {
					resDeg[u]--
				}
			})
		}
	}
	sort.Ints(out)
	return out
}

// Improve applies (1,2)-swap local search to an independent set: it
// repeatedly tries to remove one member and insert two non-adjacent
// outside vertices whose only solution-neighbour is the removed member.
// It also absorbs any free vertices. The result is at least as large
// as the input.
func (g *Graph) Improve(set []int) []int {
	inSet := bitset.New(g.n)
	for _, v := range set {
		inSet.Add(v)
	}
	// tight[v] = number of solution neighbours of v.
	tight := make([]int, g.n)
	for _, v := range set {
		g.adj[v].ForEach(func(u int) { tight[u]++ })
	}

	insert := func(v int) {
		inSet.Add(v)
		g.adj[v].ForEach(func(u int) { tight[u]++ })
	}
	remove := func(v int) {
		inSet.Remove(v)
		g.adj[v].ForEach(func(u int) { tight[u]-- })
	}

	improved := true
	for improved {
		improved = false
		// Absorb free vertices (tight == 0, not in set).
		for v := 0; v < g.n; v++ {
			if !inSet.Has(v) && tight[v] == 0 {
				insert(v)
				improved = true
			}
		}
		// (1,2)-swaps.
		for x := 0; x < g.n && !improved; x++ {
			if !inSet.Has(x) {
				continue
			}
			// Candidates: outside vertices whose only solution
			// neighbour is x.
			var oneTight []int
			g.adj[x].ForEach(func(u int) {
				if !inSet.Has(u) && tight[u] == 1 {
					oneTight = append(oneTight, u)
				}
			})
			for i := 0; i < len(oneTight) && !improved; i++ {
				for j := i + 1; j < len(oneTight); j++ {
					u, w := oneTight[i], oneTight[j]
					if !g.adj[u].Has(w) {
						remove(x)
						insert(u)
						insert(w)
						improved = true
						break
					}
				}
			}
		}
	}
	return inSet.Elements()
}

// Solve returns a large independent set: exact for graphs of at most
// ExactLimit vertices, otherwise greedy construction plus local search
// with a few seeded random restarts.
func Solve(g *Graph, seed int64) []int {
	if g.n == 0 {
		return nil
	}
	if g.n <= ExactLimit {
		return Exact(g)
	}
	best := g.Improve(g.Greedy(nil))
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	for restart := 0; restart < 8; restart++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		cand := g.Improve(g.Greedy(order))
		if len(cand) > len(best) {
			best = cand
		}
	}
	sort.Ints(best)
	return best
}

// ExactLimit is the largest vertex count handled by the exact solver.
const ExactLimit = 64

// Exact returns a maximum independent set via branch and bound. The
// graph must have at most ExactLimit vertices.
func Exact(g *Graph) []int {
	if g.n > ExactLimit {
		panic("mis: Exact limited to 64 vertices")
	}
	adj := make([]uint64, g.n)
	for v := 0; v < g.n; v++ {
		g.adj[v].ForEach(func(u int) { adj[v] |= 1 << uint(u) })
	}
	full := uint64(0)
	if g.n == 64 {
		full = ^uint64(0)
	} else {
		full = (1 << uint(g.n)) - 1
	}
	var bestSet uint64
	bestSize := 0
	var rec func(cand, cur uint64, curSize int)
	rec = func(cand, cur uint64, curSize int) {
		if curSize+bits.OnesCount64(cand) <= bestSize {
			return
		}
		if cand == 0 {
			if curSize > bestSize {
				bestSize = curSize
				bestSet = cur
			}
			return
		}
		// Branch on the candidate vertex of maximum residual degree.
		pivot, pivotDeg := -1, -1
		for c := cand; c != 0; c &= c - 1 {
			v := bits.TrailingZeros64(c)
			d := bits.OnesCount64(adj[v] & cand)
			if d > pivotDeg {
				pivot, pivotDeg = v, d
			}
		}
		vbit := uint64(1) << uint(pivot)
		// Include pivot.
		rec(cand&^(adj[pivot]|vbit), cur|vbit, curSize+1)
		// Exclude pivot.
		rec(cand&^vbit, cur, curSize)
	}
	rec(full, 0, 0)
	var out []int
	for c := bestSet; c != 0; c &= c - 1 {
		out = append(out, bits.TrailingZeros64(c))
	}
	return out
}
