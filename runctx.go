package accals

import (
	"context"
	"fmt"
	"io"
	"math"

	"accals/internal/aig"
	"accals/internal/amosa"
	"accals/internal/core"
	"accals/internal/errmetric"
	"accals/internal/opt"
	"accals/internal/runctl"
	"accals/internal/seals"
)

// StopReason explains why a synthesis run stopped. A run ends either
// normally — the next change would exceed the bound (StopBounded), the
// round budget ran out (StopMaxRounds), or no further change was found
// (StopStagnated) — or early, through cancellation or a deadline. An
// interrupted run still carries its best-so-far circuit in
// Result.Final.
type StopReason = runctl.StopReason

// StopReason values.
const (
	StopBounded          = runctl.Bounded
	StopMaxRounds        = runctl.MaxRounds
	StopStagnated        = runctl.Stagnated
	StopCancelled        = runctl.Cancelled
	StopDeadlineExceeded = runctl.DeadlineExceeded
	// StopUncertified: a MaxED round's SAT certification refuted the
	// bound or ran out of conflict budget; the run kept the last
	// certified circuit instead of adopting the unproved one.
	StopUncertified = runctl.Uncertified
)

// Sentinel errors returned by the error-reporting API variants. Match
// them with errors.Is.
var (
	// ErrTooManyInputs: the circuit has too many primary inputs for an
	// exhaustive pattern set (at most 20).
	ErrTooManyInputs = runctl.ErrTooManyInputs
	// ErrTooManyOutputs: the circuit has too many primary outputs for
	// a word-level metric (at most 63 for NMED/MRED/MaxED).
	ErrTooManyOutputs = runctl.ErrTooManyOutputs
	// ErrNoOutputs: the circuit has no primary outputs, so no error
	// metric is defined over it.
	ErrNoOutputs = runctl.ErrNoOutputs
	// ErrMalformedInput: a circuit file failed to parse, or a nil or
	// output-less circuit was passed to synthesis.
	ErrMalformedInput = runctl.ErrMalformedInput
	// ErrInterfaceMismatch: two circuits that must share a PI/PO
	// interface do not.
	ErrInterfaceMismatch = runctl.ErrInterfaceMismatch
	// ErrInvalidBound: the error bound is negative or NaN.
	ErrInvalidBound = runctl.ErrInvalidBound
	// ErrInternal: an invariant violation inside the library was
	// caught at the API boundary instead of crashing the caller.
	ErrInternal = runctl.ErrInternal
)

// StartState warm-starts a synthesis run from a checkpointed graph
// (see SynthesizeCtx and internal/checkpoint).
type StartState = core.StartState

// validateRun checks the arguments common to all synthesis entry
// points and returns a typed error for anything a caller could get
// wrong.
func validateRun(orig *Graph, metric Metric, bound float64) error {
	if orig == nil {
		return fmt.Errorf("%w: nil circuit", ErrMalformedInput)
	}
	if math.IsNaN(bound) || bound < 0 {
		return fmt.Errorf("%w: %v", ErrInvalidBound, bound)
	}
	// Validate also rejects output-less circuits (ErrNoOutputs): with
	// zero outputs every comparator would divide by zero and score the
	// whole run NaN.
	return errmetric.Validate(metric, orig)
}

// SynthesizeCtx is Synthesize with cooperative cancellation and input
// validation. The run checks ctx (and Options.Deadline/MaxRuntime)
// once per round; on cancellation it returns the best circuit found so
// far with Result.StopReason set to StopCancelled or
// StopDeadlineExceeded and a nil error — an interrupted run is still a
// usable result. A non-nil error means the inputs were unusable (see
// the Err* sentinels); no panic escapes this function.
func SynthesizeCtx(ctx context.Context, orig *Graph, metric Metric, bound float64, opt Options) (res *Result, err error) {
	defer runctl.Guard(&err)
	if err := validateRun(orig, metric, bound); err != nil {
		return nil, err
	}
	return core.RunCtx(ctx, orig, metric, bound, opt), nil
}

// SynthesizeSEALSCtx is SynthesizeSEALS with the same cancellation,
// validation, and panic-safety contract as SynthesizeCtx.
func SynthesizeSEALSCtx(ctx context.Context, orig *Graph, metric Metric, bound float64, opt Options) (res *Result, err error) {
	defer runctl.Guard(&err)
	if err := validateRun(orig, metric, bound); err != nil {
		return nil, err
	}
	return seals.RunCtx(ctx, orig, metric, bound, opt), nil
}

// SynthesizeAMOSACtx is SynthesizeAMOSA with the same cancellation,
// validation, and panic-safety contract as SynthesizeCtx. The bound
// checked here is opt.ErrBound (the archive's error ceiling).
func SynthesizeAMOSACtx(ctx context.Context, orig *Graph, metric Metric, opt AMOSAOptions) (res *AMOSAResult, err error) {
	defer runctl.Guard(&err)
	if err := validateRun(orig, metric, opt.ErrBound); err != nil {
		return nil, err
	}
	return amosa.RunCtx(ctx, orig, metric, opt), nil
}

// BalanceCtx is Balance with cooperative cancellation for very large
// graphs; it returns ctx.Err() when interrupted.
func BalanceCtx(ctx context.Context, g *Graph) (*Graph, error) {
	return opt.BalanceCtx(ctx, g)
}

// ErrorChecked is Error with validation instead of panics: it returns
// a typed error when the metric cannot be evaluated on the reference
// (ErrTooManyOutputs for word-level metrics past 63 outputs,
// ErrInterfaceMismatch when the two circuits disagree on PIs/POs).
func ErrorChecked(reference, approx *Graph, metric Metric, numPatterns int, seed int64) (e float64, err error) {
	defer runctl.Guard(&err)
	if reference == nil || approx == nil {
		return 0, fmt.Errorf("%w: nil circuit", ErrMalformedInput)
	}
	o := Options{NumPatterns: numPatterns, PatternSeed: seed, HasPatternSeed: seed != 0}
	cmp, err := errmetric.NewComparatorChecked(metric, reference, o.Patterns(reference))
	if err != nil {
		return 0, err
	}
	return cmp.Error(approx), nil
}

// readGuarded wraps a parser so that no malformed input can panic
// through the public API.
func readGuarded(r io.Reader, read func(io.Reader) (*aig.Graph, error)) (g *Graph, err error) {
	defer runctl.Guard(&err)
	return read(r)
}
